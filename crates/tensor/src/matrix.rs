//! Row-major dense matrix of `f64`.

use capes_persist::{Persist, PersistError, Reader, Writer};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A row-major dense matrix of `f64` values.
///
/// This is the only array type used by the CAPES reproduction. Vectors are
/// represented as `1 × n` or `n × 1` matrices. The storage is a single
/// contiguous `Vec<f64>` so that the GEMM kernels in [`crate::matmul`] can walk
/// it linearly.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 0.0)
    }

    /// Creates a `rows × cols` matrix filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 1.0)
    }

    /// Creates a `rows × cols` matrix where every element is `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from row slices. All rows must have the same length.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "at least one row required");
        let cols = rows[0].len();
        assert!(cols > 0, "rows must be non-empty");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "row {i} has inconsistent length");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a `1 × n` row vector.
    pub fn row_vector(values: &[f64]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Builds an `n × 1` column vector.
    pub fn col_vector(values: &[f64]) -> Self {
        Self::from_vec(values.len(), 1, values.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always `false`: a [`Matrix`] cannot be constructed empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Read-only view of the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns element `(r, c)` without bounds checking in release builds.
    ///
    /// # Panics
    /// Panics in debug builds if out of range.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = value;
    }

    /// Read-only view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {} out of range ({})", r, self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row {} out of range ({})", r, self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new `Vec`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "col {} out of range ({})", c, self.cols);
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Copies row `r` of `src` into row `dst_row` of `self`.
    ///
    /// # Panics
    /// Panics if the column counts differ or rows are out of range.
    pub fn copy_row_from(&mut self, dst_row: usize, src: &Matrix, src_row: usize) {
        assert_eq!(self.cols, src.cols, "column count mismatch");
        let dst = self.row_mut(dst_row) as *mut [f64];
        // SAFETY: src and self may alias only if they are the same allocation,
        // in which case copy_from_slice on disjoint rows is still fine; for the
        // same row it is a no-op copy.
        unsafe {
            (*dst).copy_from_slice(src.row(src_row));
        }
    }

    /// Returns a new matrix whose elements are `f(x)` for every element `x`.
    pub fn map<F: Fn(f64) -> f64>(&self, f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: Fn(f64) -> f64>(&mut self, f: F) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Returns a new matrix combining `self` and `other` element-wise with `f`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn zip_map<F: Fn(f64, f64) -> f64>(&self, other: &Matrix, f: F) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in zip_map");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Stacks matrices vertically (they must share a column count).
    pub fn vstack(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "vstack of zero matrices");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|m| m.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for m in parts {
            assert_eq!(m.cols, cols, "vstack column mismatch");
            data.extend_from_slice(&m.data);
        }
        Matrix { rows, cols, data }
    }

    /// Flattens the matrix into a `1 × (rows*cols)` row vector, row-major.
    pub fn flatten(&self) -> Matrix {
        Matrix {
            rows: 1,
            cols: self.len(),
            data: self.data.clone(),
        }
    }

    /// Reinterprets the storage with a new shape (row-major order preserved).
    ///
    /// # Panics
    /// Panics if `rows * cols != self.len()`.
    pub fn reshape(&self, rows: usize, cols: usize) -> Matrix {
        assert_eq!(rows * cols, self.len(), "reshape size mismatch");
        Matrix {
            rows,
            cols,
            data: self.data.clone(),
        }
    }

    /// `true` if every element is finite (no NaN / infinity).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Returns `true` if all elements differ from `other` by at most `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(&a, &b)| crate::approx_eq(a, b, tol))
    }
}

impl Persist for Matrix {
    // rows + cols + element count.
    const MIN_SIZE: usize = 24;

    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.rows);
        w.put_usize(self.cols);
        self.data.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, PersistError> {
        let rows = r.get_usize()?;
        let cols = r.get_usize()?;
        if rows == 0 || cols == 0 {
            return Err(PersistError::BadValue {
                what: "matrix dimension is zero",
            });
        }
        // rows · cols must not overflow and must agree with the stored
        // element count — checked before `Vec<f64>::decode` sizes its
        // allocation against the remaining bytes.
        let expected = rows.checked_mul(cols).ok_or(PersistError::BadValue {
            what: "matrix dimensions overflow",
        })?;
        let data = Vec::<f64>::decode(r)?;
        if data.len() != expected {
            return Err(PersistError::BadValue {
                what: "matrix data length disagrees with its dimensions",
            });
        }
        Ok(Matrix { rows, cols, data })
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8usize;
        for r in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            let max_cols = 10usize;
            for c in 0..self.cols.min(max_cols) {
                write!(f, "{:10.4}", self.get(r, c))?;
                if c + 1 < self.cols.min(max_cols) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > max_cols {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let o = Matrix::ones(3, 2);
        assert!(o.as_slice().iter().all(|&x| x == 1.0));

        let id = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(id.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dims_panic() {
        let _ = Matrix::zeros(0, 3);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_wrong_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn indexing_and_rows() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(2), vec![3.0, 6.0]);
        m[(1, 0)] = 9.0;
        assert_eq!(m.get(1, 0), 9.0);
        m.row_mut(0)[2] = -1.0;
        assert_eq!(m.get(0, 2), -1.0);
    }

    #[test]
    fn map_and_zip_map() {
        let m = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, -4.0]]);
        let abs = m.map(f64::abs);
        assert_eq!(abs, Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let sum = m.zip_map(&abs, |a, b| a + b);
        assert_eq!(sum, Matrix::from_rows(&[&[2.0, 0.0], &[6.0, 0.0]]));
    }

    #[test]
    fn vstack_flatten_reshape() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let s = Matrix::vstack(&[&a, &b]);
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.row(2), &[5.0, 6.0]);

        let f = s.flatten();
        assert_eq!(f.shape(), (1, 6));
        let r = f.reshape(2, 3);
        assert_eq!(r.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn copy_row_from_other() {
        let src = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0]]);
        let mut dst = Matrix::zeros(2, 2);
        dst.copy_row_from(0, &src, 1);
        assert_eq!(dst.row(0), &[9.0, 10.0]);
        assert_eq!(dst.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn finiteness_and_approx_eq() {
        let mut m = Matrix::ones(2, 2);
        assert!(m.all_finite());
        m[(0, 0)] = f64::NAN;
        assert!(!m.all_finite());

        let a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 1.0 + 1e-12);
        assert!(a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&Matrix::filled(2, 2, 1.1), 1e-9));
        assert!(!a.approx_eq(&Matrix::filled(2, 3, 1.0), 1e-9));
    }

    #[test]
    fn serde_round_trip() {
        let m = Matrix::from_rows(&[&[1.5, 2.5], &[3.5, -4.5]]);
        let json = serde_json::to_string(&m).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn debug_format_is_bounded() {
        let m = Matrix::zeros(100, 100);
        let s = format!("{m:?}");
        // Debug output must stay small even for large matrices.
        assert!(s.len() < 2_000);
    }
}
