//! Persistent worker pool used by the GEMM kernels.
//!
//! The original threaded kernel spawned OS threads through
//! `std::thread::scope` on every call — fine for one-off products, but the
//! DQN training step multiplies a dozen large matrices per tick, forever, and
//! the spawn/join cost dominated. [`WorkerPool`] spawns its workers once and
//! dispatches row-range jobs over pre-allocated bounded channels (see the
//! crossbeam shim), so the steady-state dispatch path performs **zero heap
//! allocations**: a job is a `Copy` struct pushed into a fixed ring buffer.
//!
//! The process-wide pool ([`global`]) sizes itself from the `CAPES_THREADS`
//! environment variable when set (total parallelism including the calling
//! thread), falling back to `std::thread::available_parallelism`. With one
//! thread the pool degenerates to running the job inline, so single-core
//! hosts pay nothing for the machinery.

use crossbeam::channel::{bounded, Receiver, Sender};
use std::sync::{Mutex, OnceLock};

/// A row-range job: an erased `Fn(usize, usize)` invoked as
/// `call(ctx, start, end)`. The dispatcher blocks until every job it sent has
/// been acknowledged, so `ctx` (a pointer to a caller-stack closure) never
/// outlives the closure it points to.
#[derive(Clone, Copy)]
struct Task {
    call: unsafe fn(*const (), usize, usize),
    ctx: *const (),
    start: usize,
    end: usize,
}

// SAFETY: the pointers inside a Task are only dereferenced while the
// dispatching thread is blocked in `WorkerPool::run`, which keeps the
// referents alive; the closure is required to be `Sync`.
unsafe impl Send for Task {}

/// # Safety
/// `ctx` must point to a live `F` for the duration of the call.
unsafe fn trampoline<F: Fn(usize, usize) + Sync>(ctx: *const (), start: usize, end: usize) {
    // SAFETY: the dispatcher passes a pointer to the closure it keeps alive
    // while blocked on the acks; `F: Sync` allows the shared call.
    let f = unsafe { &*(ctx as *const F) };
    f(start, end);
}

/// A fixed set of worker threads executing row-range jobs.
pub struct WorkerPool {
    /// One single-slot channel per worker; a worker only ever holds one job.
    task_txs: Vec<Sender<Task>>,
    /// Acknowledgement channel; the payload is `true` if the chunk panicked.
    done_rx: Receiver<bool>,
    /// Serialises dispatches so concurrent callers (e.g. parallel tests)
    /// cannot interleave jobs and acknowledgements.
    dispatch: Mutex<()>,
    /// Total parallelism including the calling thread.
    threads: usize,
}

impl WorkerPool {
    /// Creates a pool with `threads` total parallelism (the calling thread
    /// participates, so `threads - 1` workers are spawned; `threads <= 1`
    /// spawns none and [`WorkerPool::run`] executes inline).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let workers = threads - 1;
        let (done_tx, done_rx) = bounded::<bool>(workers.max(1));
        let mut task_txs = Vec::with_capacity(workers);
        for i in 0..workers {
            let (tx, rx) = bounded::<Task>(1);
            let done = done_tx.clone();
            std::thread::Builder::new()
                .name(format!("capes-gemm-{i}"))
                .spawn(move || {
                    while let Ok(task) = rx.recv() {
                        // Contain panics so a failing chunk cannot kill the
                        // worker: the dispatcher must always receive its ack
                        // (otherwise it would block forever), and the worker
                        // must stay usable for the next dispatch. The panic
                        // flag travels back in the ack and is re-raised on
                        // the dispatching thread.
                        let result =
                            // SAFETY: the Task invariant (see `unsafe impl
                            // Send for Task`) keeps `ctx` alive until this
                            // worker acks; `call` is the matching trampoline.
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
                                (task.call)(task.ctx, task.start, task.end)
                            }));
                        if done.send(result.is_err()).is_err() {
                            break;
                        }
                    }
                })
                .expect("failed to spawn GEMM worker");
            task_txs.push(tx);
        }
        WorkerPool {
            task_txs,
            done_rx,
            dispatch: Mutex::new(()),
            threads,
        }
    }

    /// Total parallelism of the pool (workers + the calling thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Splits `0..rows` into contiguous chunks of at least `min_rows` and runs
    /// `f(start, end)` on each, using the pool's workers plus the calling
    /// thread. Blocks until every chunk has completed. Runs inline when the
    /// pool is single-threaded or the problem is too small to split.
    pub fn run<F: Fn(usize, usize) + Sync>(&self, rows: usize, min_rows: usize, f: F) {
        if rows == 0 {
            return;
        }
        let max_parts = rows.div_ceil(min_rows.max(1));
        let parts = self.threads.min(max_parts);
        if parts <= 1 {
            f(0, rows);
            return;
        }
        // Times a real multi-chunk dispatch end to end (send, chunk
        // execution on workers + caller, acknowledgement barrier).
        let _span = capes_telemetry::span!("gemm.pool_dispatch");
        // The guard protects no data (the mutex only serialises dispatches),
        // so a poison left by a previous dispatch's propagated panic is
        // harmless — recover it.
        let _guard = self
            .dispatch
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let chunk = rows.div_ceil(parts);
        let ctx = &f as *const F as *const ();
        let mut dispatched = 0usize;
        let mut send_failed = false;
        for i in 0..parts - 1 {
            let start = i * chunk;
            let end = ((i + 1) * chunk).min(rows);
            if start >= end {
                break;
            }
            if self.task_txs[i]
                .send(Task {
                    call: trampoline::<F>,
                    ctx,
                    start,
                    end,
                })
                .is_err()
            {
                // Cannot happen while the pool is alive (workers contain
                // panics and never exit their loop), but if it ever did we
                // must still drain the already-dispatched acks below before
                // unwinding: workers hold a raw pointer into this frame.
                send_failed = true;
                break;
            }
            dispatched += 1;
        }
        // The calling thread takes the tail chunk while workers run theirs.
        // Its panic (if any) must not unwind past this frame before every
        // worker has acknowledged: `f` lives on this stack and workers hold a
        // raw pointer to it, so unwinding early would be a use-after-free.
        let tail = (parts - 1) * chunk;
        let caller_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if !send_failed && tail < rows {
                f(tail, rows);
            }
        }));
        let mut worker_panicked = false;
        for _ in 0..dispatched {
            worker_panicked |= self.done_rx.recv().expect("GEMM worker disappeared");
        }
        assert!(!send_failed, "GEMM worker disappeared");
        if let Err(payload) = caller_result {
            std::panic::resume_unwind(payload);
        }
        assert!(!worker_panicked, "a GEMM pool worker chunk panicked");
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish()
    }
}

/// Parallelism configured for this process: `CAPES_THREADS` when set to a
/// positive integer, otherwise the hardware thread count.
pub fn configured_threads() -> usize {
    std::env::var("CAPES_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(crate::matmul::available_threads)
}

/// The process-wide pool, created on first use with [`configured_threads`]
/// workers. `CAPES_THREADS` is read once, at initialisation — as is the SIMD
/// kernel level ([`crate::simd::active_level`], honouring `CAPES_SIMD`),
/// which is warmed here so both process-wide choices are pinned together
/// before the first dispatch.
pub fn global() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let _ = crate::simd::active_level();
        WorkerPool::new(configured_threads())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn covers_every_row_exactly_once() {
        let pool = WorkerPool::new(4);
        let rows = 103;
        let hits: Vec<AtomicUsize> = (0..rows).map(|_| AtomicUsize::new(0)).collect();
        pool.run(rows, 1, |start, end| {
            for h in &hits[start..end] {
                h.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let count = AtomicUsize::new(0);
        pool.run(10, 1, |start, end| {
            count.fetch_add(end - start, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn small_problems_are_not_split() {
        let pool = WorkerPool::new(8);
        let calls = AtomicUsize::new(0);
        pool.run(5, 8, |start, end| {
            calls.fetch_add(1, Ordering::SeqCst);
            assert_eq!((start, end), (0, 5));
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn pool_is_reusable_across_dispatches() {
        let pool = WorkerPool::new(3);
        for round in 1..=20usize {
            let total = AtomicUsize::new(0);
            pool.run(round * 7, 1, |start, end| {
                total.fetch_add(end - start, Ordering::SeqCst);
            });
            assert_eq!(total.load(Ordering::SeqCst), round * 7);
        }
    }

    #[test]
    fn panicking_chunk_propagates_and_leaves_the_pool_usable() {
        let pool = WorkerPool::new(3);
        // A chunk panics on a worker (or the caller); run must surface the
        // panic on the dispatching thread without deadlocking or leaving a
        // dangling job behind.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(30, 1, |start, _end| {
                if start == 0 {
                    panic!("chunk failure");
                }
            });
        }));
        assert!(result.is_err(), "the chunk panic must propagate");
        // The pool must still dispatch correctly afterwards.
        let total = AtomicUsize::new(0);
        pool.run(30, 1, |start, end| {
            total.fetch_add(end - start, Ordering::SeqCst);
        });
        assert_eq!(total.load(Ordering::SeqCst), 30);
    }

    #[test]
    fn zero_rows_is_a_no_op() {
        let pool = WorkerPool::new(2);
        pool.run(0, 1, |_, _| panic!("must not be called"));
    }

    #[test]
    fn global_pool_is_initialised_once() {
        let a = global() as *const WorkerPool;
        let b = global() as *const WorkerPool;
        assert_eq!(a, b);
        assert!(global().threads() >= 1);
    }

    #[test]
    fn configured_threads_is_positive() {
        assert!(configured_threads() >= 1);
    }
}
