//! Weight-initialisation schemes for neural-network layers.

use crate::Matrix;
use rand::distributions::Distribution;
use rand::Rng;

/// Initialisation schemes supported by [`Matrix::random_init`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightInit {
    /// Uniform in `[-limit, limit]`.
    Uniform {
        /// Half-width of the sampling interval.
        limit: f64,
    },
    /// Xavier/Glorot uniform: `limit = sqrt(6 / (fan_in + fan_out))`.
    ///
    /// This is the standard choice for tanh layers, which is what the CAPES
    /// network uses for its two hidden layers.
    XavierUniform,
    /// He/Kaiming normal: `stddev = sqrt(2 / fan_in)` — appropriate for ReLU.
    HeNormal,
    /// All zeros (used for biases).
    Zeros,
}

impl Matrix {
    /// Creates a `rows × cols` matrix drawn from the given initialisation
    /// scheme. For the fan-based schemes, `rows` is treated as `fan_in` and
    /// `cols` as `fan_out`, matching a weight matrix used as `x · W`.
    pub fn random_init<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        scheme: WeightInit,
        rng: &mut R,
    ) -> Matrix {
        match scheme {
            WeightInit::Zeros => Matrix::zeros(rows, cols),
            WeightInit::Uniform { limit } => {
                assert!(limit > 0.0, "uniform init limit must be positive");
                let mut m = Matrix::zeros(rows, cols);
                for x in m.as_mut_slice() {
                    *x = rng.gen_range(-limit..limit);
                }
                m
            }
            WeightInit::XavierUniform => {
                let limit = (6.0 / (rows as f64 + cols as f64)).sqrt();
                Matrix::random_init(rows, cols, WeightInit::Uniform { limit }, rng)
            }
            WeightInit::HeNormal => {
                let stddev = (2.0 / rows as f64).sqrt();
                let normal = GaussianSampler { stddev };
                let mut m = Matrix::zeros(rows, cols);
                for x in m.as_mut_slice() {
                    *x = normal.sample(rng);
                }
                m
            }
        }
    }
}

/// Zero-mean Gaussian sampler built on the Box–Muller transform so we do not
/// need `rand_distr` as an extra dependency.
struct GaussianSampler {
    stddev: f64,
}

impl Distribution<f64> for GaussianSampler {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: u1 in (0, 1] to avoid ln(0).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let mag = (-2.0 * u1.ln()).sqrt();
        mag * (2.0 * std::f64::consts::PI * u2).cos() * self.stddev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_init() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = Matrix::random_init(4, 4, WeightInit::Zeros, &mut rng);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn uniform_respects_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Matrix::random_init(50, 50, WeightInit::Uniform { limit: 0.3 }, &mut rng);
        assert!(m.as_slice().iter().all(|&x| x.abs() <= 0.3));
        // The draw should not be degenerate.
        assert!(m.max_abs() > 0.05);
    }

    #[test]
    fn xavier_limit_depends_on_fan() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = Matrix::random_init(300, 300, WeightInit::XavierUniform, &mut rng);
        let limit = (6.0 / 600.0f64).sqrt();
        assert!(m.as_slice().iter().all(|&x| x.abs() <= limit));
    }

    #[test]
    fn he_normal_has_reasonable_spread() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = Matrix::random_init(200, 200, WeightInit::HeNormal, &mut rng);
        let mean = m.mean();
        let var = m
            .as_slice()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / (m.len() - 1) as f64;
        let expected_var = 2.0 / 200.0;
        assert!(mean.abs() < 0.01, "mean should be near zero, got {mean}");
        assert!(
            (var - expected_var).abs() / expected_var < 0.2,
            "variance {var} should be near {expected_var}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let m1 = Matrix::random_init(10, 10, WeightInit::XavierUniform, &mut a);
        let m2 = Matrix::random_init(10, 10, WeightInit::XavierUniform, &mut b);
        assert_eq!(m1, m2);
    }
}
