//! Element-wise operations, reductions and BLAS-1 style helpers on [`Matrix`].

use crate::Matrix;

impl Matrix {
    /// Element-wise sum `self + other`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise difference `self - other`.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a * b)
    }

    /// In-place element-wise (Hadamard) product `self ⊙= other`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn hadamard_assign(&mut self, other: &Matrix) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "hadamard_assign shape mismatch"
        );
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a *= b;
        }
    }

    /// Copies every element of `other` into `self` without reallocating.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn copy_from(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "copy_from shape mismatch");
        self.as_mut_slice().copy_from_slice(other.as_slice());
    }

    /// Multiplies every element by `k`.
    pub fn scale(&self, k: f64) -> Matrix {
        self.map(|x| x * k)
    }

    /// Adds `k` to every element.
    pub fn shift(&self, k: f64) -> Matrix {
        self.map(|x| x + k)
    }

    /// In-place `self += alpha * other` (the classic axpy update).
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += alpha * b;
        }
    }

    /// In-place convex blend `self = (1 - alpha) * self + alpha * other`.
    ///
    /// This is the exact soft-update rule the paper uses for the target
    /// network: θ⁻ ← θ⁻·(1−α) + θ·α (§3.4).
    pub fn blend(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "blend shape mismatch");
        for (a, &b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a = *a * (1.0 - alpha) + b * alpha;
        }
    }

    /// Transposed copy of the matrix.
    pub fn transpose(&self) -> Matrix {
        let (r, c) = self.shape();
        let mut out = Matrix::zeros(c, r);
        for i in 0..r {
            for j in 0..c {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.as_slice().iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f64 {
        self.sum() / self.len() as f64
    }

    /// Largest element (returns `-inf` only if all entries are `-inf`).
    pub fn max(&self) -> f64 {
        self.as_slice()
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Smallest element.
    pub fn min(&self) -> f64 {
        self.as_slice()
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Frobenius norm (√Σx²).
    pub fn frobenius_norm(&self) -> f64 {
        self.as_slice().iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute element value.
    pub fn max_abs(&self) -> f64 {
        self.as_slice().iter().fold(0.0f64, |m, &x| m.max(x.abs()))
    }

    /// Index of the maximum value within row `r` (ties resolve to the first).
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row(r);
        let mut best = 0usize;
        let mut best_val = row[0];
        for (i, &v) in row.iter().enumerate().skip(1) {
            if v > best_val {
                best = i;
                best_val = v;
            }
        }
        best
    }

    /// Maximum value within row `r`.
    pub fn max_row(&self, r: usize) -> f64 {
        self.row(r)
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Per-column mean as a `1 × cols` row vector.
    pub fn mean_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols());
        for r in 0..self.rows() {
            for c in 0..self.cols() {
                out[(0, c)] += self.get(r, c);
            }
        }
        let n = self.rows() as f64;
        out.map_inplace(|x| x / n);
        out
    }

    /// Per-column sum as a `1 × cols` row vector (used to reduce per-sample
    /// bias gradients over a minibatch).
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols());
        self.sum_rows_into(&mut out);
        out
    }

    /// Per-column sum written into a caller-owned `1 × cols` row vector.
    ///
    /// # Panics
    /// Panics if `out` is not `1 × self.cols()`.
    pub fn sum_rows_into(&self, out: &mut Matrix) {
        assert_eq!(
            out.shape(),
            (1, self.cols()),
            "sum_rows_into output shape mismatch"
        );
        let acc = out.as_mut_slice();
        acc.fill(0.0);
        for r in 0..self.rows() {
            for (a, &x) in acc.iter_mut().zip(self.row(r)) {
                *a += x;
            }
        }
    }

    /// Adds the `1 × cols` row vector `bias` to every row of the matrix.
    ///
    /// # Panics
    /// Panics if `bias` is not `1 × cols`.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        assert_eq!(bias.rows(), 1, "broadcast vector must have one row");
        assert_eq!(bias.cols(), self.cols(), "broadcast width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows() {
            for c in 0..out.cols() {
                out[(r, c)] += bias[(0, c)];
            }
        }
        out
    }

    /// Clamps every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f64, hi: f64) -> Matrix {
        assert!(lo <= hi, "clamp bounds inverted");
        self.map(|x| x.clamp(lo, hi))
    }

    /// Rescales every element of the matrix so that the Frobenius norm does
    /// not exceed `max_norm` (gradient clipping). Returns the scaling factor
    /// applied (1.0 if no clipping was needed).
    pub fn clip_norm(&mut self, max_norm: f64) -> f64 {
        assert!(max_norm > 0.0, "max_norm must be positive");
        let norm = self.frobenius_norm();
        if norm <= max_norm || norm == 0.0 {
            return 1.0;
        }
        let k = max_norm / norm;
        self.map_inplace(|x| x * k);
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]])
    }

    #[test]
    fn add_sub_hadamard_scale() {
        let a = sample();
        let b = Matrix::filled(2, 3, 2.0);
        assert_eq!(a.add(&b).get(0, 0), 3.0);
        assert_eq!(a.sub(&b).get(1, 2), 4.0);
        assert_eq!(a.hadamard(&b).get(1, 1), 10.0);
        assert_eq!(a.scale(0.5).get(1, 2), 3.0);
        assert_eq!(a.shift(1.0).get(0, 0), 2.0);
    }

    #[test]
    fn axpy_and_blend() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let g = Matrix::filled(2, 2, 4.0);
        a.axpy(-0.25, &g);
        assert!(a.approx_eq(&Matrix::zeros(2, 2), 1e-12));

        let mut target = Matrix::filled(2, 2, 0.0);
        let online = Matrix::filled(2, 2, 10.0);
        target.blend(0.01, &online);
        assert!(target.approx_eq(&Matrix::filled(2, 2, 0.1), 1e-12));
        // Blending with alpha = 1 copies the online network.
        target.blend(1.0, &online);
        assert!(target.approx_eq(&online, 1e-12));
    }

    #[test]
    fn transpose_involution() {
        let a = sample();
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn reductions() {
        let a = sample();
        assert_eq!(a.sum(), 21.0);
        assert_eq!(a.mean(), 3.5);
        assert_eq!(a.max(), 6.0);
        assert_eq!(a.min(), 1.0);
        assert!((a.frobenius_norm() - 91.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(a.max_abs(), 6.0);
    }

    #[test]
    fn row_reductions_and_argmax() {
        let a = Matrix::from_rows(&[&[0.5, 3.0, -1.0], &[2.0, 2.0, 2.0]]);
        assert_eq!(a.argmax_row(0), 1);
        assert_eq!(a.argmax_row(1), 0, "ties resolve to first index");
        assert_eq!(a.max_row(0), 3.0);
        let means = a.mean_rows();
        assert!(means.approx_eq(&Matrix::row_vector(&[1.25, 2.5, 0.5]), 1e-12));
        let sums = a.sum_rows();
        assert!(sums.approx_eq(&Matrix::row_vector(&[2.5, 5.0, 1.0]), 1e-12));
    }

    #[test]
    fn broadcast_and_clamp() {
        let a = sample();
        let bias = Matrix::row_vector(&[10.0, 20.0, 30.0]);
        let out = a.add_row_broadcast(&bias);
        assert_eq!(out.get(1, 2), 36.0);
        let clamped = a.clamp(2.0, 5.0);
        assert_eq!(clamped.get(0, 0), 2.0);
        assert_eq!(clamped.get(1, 2), 5.0);
    }

    #[test]
    fn clip_norm_scales_down_only_when_needed() {
        let mut g = Matrix::filled(2, 2, 3.0); // norm = 6
        let k = g.clip_norm(3.0);
        assert!((k - 0.5).abs() < 1e-12);
        assert!((g.frobenius_norm() - 3.0).abs() < 1e-9);

        let mut small = Matrix::filled(2, 2, 0.1);
        let k2 = small.clip_norm(100.0);
        assert_eq!(k2, 1.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mismatched_axpy_panics() {
        let mut a = Matrix::zeros(2, 2);
        a.axpy(1.0, &Matrix::zeros(3, 2));
    }
}
