//! # capes-tensor
//!
//! Dense matrix and vector kernels used by the CAPES neural-network stack.
//!
//! The CAPES paper implements its deep Q-network with TensorFlow; this crate is
//! the corresponding substrate for the Rust reproduction. It provides a
//! row-major [`Matrix`] of `f64`, element-wise operations, reductions, several
//! GEMM implementations (naive, cache-blocked, and multi-threaded), and the
//! weight-initialisation schemes used by the network.
//!
//! The crate is deliberately small: CAPES only needs dense 2-D arrays (the
//! observation matrices of §3.4 of the paper are `S sampling ticks × N nodes`
//! matrices flattened into network inputs), so no general N-dimensional tensor
//! machinery is provided.
//!
//! ## Example
//!
//! ```
//! use capes_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod init;
pub mod matmul;
pub mod matrix;
pub mod ops;
pub mod pool;
pub mod simd;

pub use init::WeightInit;
pub use matmul::MatmulStrategy;
pub use matrix::Matrix;
pub use pool::WorkerPool;
pub use simd::SimdLevel;

/// Absolute tolerance used throughout the workspace when comparing floating
/// point results of linear-algebra kernels.
pub const DEFAULT_TOLERANCE: f64 = 1e-9;

/// Returns `true` if `a` and `b` are within `tol` of each other.
///
/// Handles the case where both values are non-finite in the same way
/// (`NaN == NaN` is considered equal here so that tests can compare
/// intentionally-poisoned matrices).
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    if a.is_nan() && b.is_nan() {
        return true;
    }
    // Exact equality also covers matching infinities, where `a - b` is NaN.
    a == b || (a - b).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_basic() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
        assert!(approx_eq(f64::NAN, f64::NAN, 1e-9));
    }
}
