//! The assembled CAPES system (Figure 1): Monitoring Agents feeding an
//! Interface Daemon that writes the Replay DB, a pluggable [`TuningEngine`]
//! that proposes actions (and, for the DQN, trains on the Replay DB), an
//! Action Checker screening those actions, and a Control Agent applying them
//! to the target system.
//!
//! Systems are assembled through [`crate::builder::Capes::builder`]; the old
//! telescoping constructors remain as deprecated shims.

use crate::engine::{DrlEngine, EngineContext, ProposedAction, TuningEngine};
use crate::error::CapesError;
use crate::experiment::{Phase, PhaseKind, TickObserver};
use crate::hyperparams::Hyperparameters;
use crate::objective::Objective;
use crate::session::SessionResult;
use crate::target::{TargetSystem, TunableSpec};
use capes_agents::wire::{decode_message, encode_message};
use capes_agents::{
    ActionChecker, ActionMessage, ControlAgent, InterfaceDaemon, Message, MonitoringAgent,
};
use capes_drl::DqnAgent;
use capes_replay::{Observation, SharedReplayDb};
use crossbeam::channel::{unbounded, Receiver};
use parking_lot::Mutex;
use std::path::Path;
use std::sync::Arc;

/// How monitoring traffic travels from the agents to the Interface Daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Transport {
    /// Decoded [`Message`] values are handed to the daemon directly (the
    /// historical in-process default; PI values keep full `f64` precision).
    #[default]
    InProcess,
    /// Every message is encoded into its binary wire frame and decoded by the
    /// daemon — the paper's deployment shape. PI values round-trip through
    /// `f32` exactly as they would over the network, and the daemon's
    /// byte counters (Table 2) accumulate real frame sizes.
    Wire,
    /// Messages leave the system entirely: they are staged in an outbox for
    /// an external driver (the fleet daemon's socket front end) to transmit
    /// over real TCP connections, and the decoded replies come back through
    /// [`CapesSystem::ingest_message`]. A system on this transport must be
    /// driven through the staged [`CapesSystem::measure_tick`] /
    /// [`CapesSystem::complete_measurement`] API — the one-shot
    /// [`CapesSystem::begin_tick`] cannot complete a tick whose traffic is
    /// still in flight.
    Socket,
}

/// Everything that happened during one system tick.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemTick {
    /// Simulated tick index.
    pub tick: u64,
    /// Aggregate throughput achieved by the target system, MB/s.
    pub throughput_mbps: f64,
    /// Objective-function output (the reward source).
    pub objective: f64,
    /// Action index chosen this tick, if the engine reasons in the discrete
    /// `2P + 1` action space.
    pub action: Option<usize>,
    /// Whether the action was exploratory.
    pub explored: bool,
    /// Prediction error of the training step(s) run this tick, if any.
    pub prediction_error: Option<f64>,
}

/// The measurement half of one tick, produced by
/// [`CapesSystem::begin_tick`] and consumed by [`CapesSystem::finish_tick`].
///
/// External drivers (the fleet daemon) run many systems' measurement stages
/// first, decide for all of them in one batched forward pass, and only then
/// apply actions and finish the ticks.
#[derive(Debug, Clone)]
pub struct TickMeasurement {
    /// The tick this measurement belongs to.
    pub tick: u64,
    /// Aggregate throughput achieved by the target system, MB/s.
    pub throughput_mbps: f64,
    /// Objective-function output (the reward source), before reward scaling.
    pub objective: f64,
    /// The flattened observation ending at this tick, if the Replay DB has
    /// enough history (`None` during baseline phases, which never decide).
    pub observation: Option<Observation>,
}

/// The boxed parameter-setter closure the Control Agent drives.
type ParamSetter = Box<dyn FnMut(&[f64]) + Send>;

/// The CAPES system wired around a target system.
pub struct CapesSystem<T: TargetSystem> {
    target: T,
    hyperparams: Hyperparameters,
    objective: Objective,
    db: SharedReplayDb,
    daemon: InterfaceDaemon,
    monitors: Vec<MonitoringAgent>,
    control_rx: Receiver<ActionMessage>,
    control_agent: ControlAgent<ParamSetter>,
    staged_params: Arc<Mutex<Option<Vec<f64>>>>,
    engine: Box<dyn TuningEngine>,
    observers: Vec<Box<dyn TickObserver>>,
    specs: Vec<TunableSpec>,
    transport: Transport,
    /// Messages staged for an external transmitter ([`Transport::Socket`]
    /// only); always empty on the in-process transports.
    outbox: Vec<Message>,
    tick: u64,
    throughput_history: Vec<f64>,
    prediction_errors: Vec<(u64, f64)>,
}

impl<T: TargetSystem> CapesSystem<T> {
    /// Builds a CAPES deployment around `target` with the default
    /// (throughput) objective and a permissive Action Checker.
    #[deprecated(note = "use `Capes::builder(target)…build()` instead")]
    pub fn new(target: T, hyperparams: Hyperparameters, seed: u64) -> Self {
        crate::builder::Capes::builder(target)
            .hyperparams(hyperparams)
            .seed(seed)
            .build()
            .expect("invalid CAPES configuration")
    }

    /// Fully-configurable constructor: custom objective function and Action
    /// Checker.
    #[deprecated(note = "use `Capes::builder(target)…build()` instead")]
    pub fn with_objective_and_checker(
        target: T,
        hyperparams: Hyperparameters,
        objective: Objective,
        checker: ActionChecker,
        seed: u64,
    ) -> Self {
        crate::builder::Capes::builder(target)
            .hyperparams(hyperparams)
            .objective(objective)
            .checker(checker)
            .seed(seed)
            .build()
            .expect("invalid CAPES configuration")
    }

    /// Wires the deployment together. Called by the builder, which has
    /// already validated the hyperparameters, the tunable-spec list and (when
    /// supplied) the external replay stripe's configuration. `replay_db` is
    /// the arena stripe to write into; `None` builds a standalone one-stripe
    /// arena.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        target: T,
        hyperparams: Hyperparameters,
        objective: Objective,
        checker: ActionChecker,
        _seed: u64,
        engine: Box<dyn TuningEngine>,
        observers: Vec<Box<dyn TickObserver>>,
        transport: Transport,
        replay_db: Option<SharedReplayDb>,
    ) -> Self {
        let num_nodes = target.num_nodes();
        let pis_per_node = target.pis_per_node();
        let specs = target.tunable_specs();
        debug_assert!(!specs.is_empty(), "builder validates the spec list");

        let db = replay_db.unwrap_or_else(|| {
            SharedReplayDb::new(hyperparams.replay_config(num_nodes, pis_per_node))
        });
        let mut daemon = InterfaceDaemon::new(db.clone(), num_nodes, checker);

        let (control_tx, control_rx) = unbounded();
        daemon.register_control_channel(control_tx);
        let staged_params: Arc<Mutex<Option<Vec<f64>>>> = Arc::new(Mutex::new(None));
        let staging = staged_params.clone();
        let setter: ParamSetter =
            Box::new(move |values: &[f64]| *staging.lock() = Some(values.to_vec()));
        let control_agent = ControlAgent::new(0, setter);

        let monitors = (0..num_nodes)
            .map(|n| MonitoringAgent::new(n, 0.0))
            .collect();

        CapesSystem {
            target,
            hyperparams,
            objective,
            db,
            daemon,
            monitors,
            control_rx,
            control_agent,
            staged_params,
            engine,
            observers,
            specs,
            transport,
            outbox: Vec::new(),
            tick: 0,
            throughput_history: Vec::new(),
            prediction_errors: Vec::new(),
        }
    }

    /// The target system (read access).
    pub fn target(&self) -> &T {
        &self.target
    }

    /// The target system (mutable access, e.g. to change its workload).
    pub fn target_mut(&mut self) -> &mut T {
        &mut self.target
    }

    /// The hyperparameters in force.
    pub fn hyperparams(&self) -> &Hyperparameters {
        &self.hyperparams
    }

    /// The shared replay database.
    pub fn replay_db(&self) -> &SharedReplayDb {
        &self.db
    }

    /// The tuning engine driving this system.
    pub fn engine(&self) -> &dyn TuningEngine {
        self.engine.as_ref()
    }

    /// Mutable access to the tuning engine.
    pub fn engine_mut(&mut self) -> &mut dyn TuningEngine {
        self.engine.as_mut()
    }

    /// The DQN agent, when the system runs the DRL engine (`None` for the
    /// search comparators).
    pub fn dqn_agent(&self) -> Option<&DqnAgent> {
        self.engine
            .as_any()
            .downcast_ref::<DrlEngine>()
            .map(DrlEngine::agent)
    }

    /// Registers an additional per-tick observer at runtime.
    pub fn add_observer<O: TickObserver + 'static>(&mut self, observer: O) {
        self.observers.push(Box::new(observer));
    }

    /// Current tick (seconds since the system was assembled).
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Per-tick aggregate throughput observed so far.
    pub fn throughput_history(&self) -> &[f64] {
        &self.throughput_history
    }

    /// `(tick, prediction error)` series collected from training steps —
    /// the data behind Figure 5.
    pub fn prediction_errors(&self) -> &[(u64, f64)] {
        &self.prediction_errors
    }

    /// The tunable-parameter specifications of the target (validated at
    /// build time).
    pub fn specs(&self) -> &[TunableSpec] {
        &self.specs
    }

    /// The monitoring transport the system was built with.
    pub fn transport(&self) -> Transport {
        self.transport
    }

    /// The parameter values the target system is currently using.
    pub fn current_params(&self) -> Vec<f64> {
        self.target.current_params()
    }

    /// Resets every tunable parameter to its default value (used before
    /// baseline measurements).
    pub fn reset_params_to_defaults(&mut self) {
        let defaults: Vec<f64> = self.specs.iter().map(|s| s.default).collect();
        self.target.apply_params(&defaults);
        // The reset bypasses the control path, so the Control Agent's
        // deduplication cache no longer matches the target: without this, an
        // engine re-proposing its previous parameters after a baseline phase
        // would be deduplicated and the target would stay at the defaults.
        self.control_agent.invalidate_cache();
    }

    /// Signals a scheduled workload change: the engine is informed (the DQN
    /// bumps exploration back up, paper §3.6) and so is the daemon.
    pub fn notify_workload_change(&mut self) {
        self.engine
            .notify_workload_change(self.tick, self.hyperparams.workload_change_bump_ticks);
        self.daemon
            .ingest(&Message::WorkloadChange { tick: self.tick });
    }

    /// One training tick: measure, store, explore, train.
    pub fn training_tick(&mut self) -> SystemTick {
        self.run_tick(PhaseKind::Train)
    }

    /// One tuning tick: measure, store, exploit, no training.
    pub fn tuning_tick(&mut self) -> SystemTick {
        self.run_tick(PhaseKind::Tuned)
    }

    /// One baseline tick: measure and store only; parameters stay untouched.
    pub fn baseline_tick(&mut self) -> SystemTick {
        self.run_tick(PhaseKind::Baseline)
    }

    /// Runs one phase of an experiment plan and returns its session result.
    /// This is the single code path behind [`crate::experiment::Experiment`]
    /// and the deprecated free session runners.
    pub fn run_phase(&mut self, phase: &Phase) -> SessionResult {
        let kind = phase.kind();
        let label = phase.label();
        self.notify_phase_start(kind, &label);
        if kind == PhaseKind::Baseline {
            self.reset_params_to_defaults();
        }
        let errors_before = self.prediction_errors.len();
        let ticks = phase.ticks();
        let mut series = Vec::with_capacity(ticks as usize);
        for _ in 0..ticks {
            series.push(self.run_tick(kind).throughput_mbps);
        }
        let prediction_errors = if kind == PhaseKind::Train {
            self.prediction_errors[errors_before..].to_vec()
        } else {
            Vec::new()
        };
        let result = SessionResult::from_series(
            kind,
            label,
            series,
            prediction_errors,
            self.current_params(),
        );
        self.notify_phase_end(kind, &result);
        result
    }

    /// Invokes every observer's phase-start hook. Exposed so external phase
    /// drivers (the fleet daemon) can mirror [`CapesSystem::run_phase`]'s
    /// observer protocol while owning the tick loop themselves.
    pub fn notify_phase_start(&mut self, kind: PhaseKind, label: &str) {
        for observer in &mut self.observers {
            observer.on_phase_start(kind, label);
        }
    }

    /// Invokes every observer's phase-end hook (see
    /// [`CapesSystem::notify_phase_start`]).
    pub fn notify_phase_end(&mut self, kind: PhaseKind, result: &SessionResult) {
        for observer in &mut self.observers {
            observer.on_phase_end(kind, result);
        }
    }

    /// Saves the engine's learned model to a checkpoint file.
    ///
    /// # Errors
    /// [`CapesError::EngineUnsupported`] if the engine has no persistable
    /// model; [`CapesError::Checkpoint`] on I/O failure.
    pub fn save_checkpoint<P: AsRef<Path>>(&self, path: P) -> Result<(), CapesError> {
        let agent = self
            .dqn_agent()
            .ok_or_else(|| CapesError::EngineUnsupported {
                engine: self.engine.name().to_string(),
                operation: "checkpointing",
            })?;
        agent.save_checkpoint(path).map_err(CapesError::from)
    }

    /// Replaces the DRL engine's agent with one restored from a checkpoint
    /// (the Figure-4 protocol: reuse a trained model in a later session).
    ///
    /// # Errors
    /// [`CapesError::EngineUnsupported`] if the engine is not the DRL engine;
    /// [`CapesError::CheckpointMismatch`] if the checkpoint was trained for a
    /// different observation size; [`CapesError::Checkpoint`] on I/O failure.
    pub fn restore_checkpoint<P: AsRef<Path>>(
        &mut self,
        path: P,
        seed: u64,
    ) -> Result<(), CapesError> {
        let restored = DqnAgent::load_checkpoint(path, seed)?;
        let engine_name = self.engine.name().to_string();
        let engine = self.engine.as_any_mut().downcast_mut::<DrlEngine>().ok_or(
            CapesError::EngineUnsupported {
                engine: engine_name,
                operation: "checkpoint restoration",
            },
        )?;
        let expected = engine.agent().config().observation_size;
        let actual = restored.config().observation_size;
        if expected != actual {
            return Err(CapesError::CheckpointMismatch {
                reason: format!(
                    "checkpoint was trained for observation size {actual}, system uses {expected}"
                ),
            });
        }
        engine.replace_agent(restored);
        Ok(())
    }

    /// Interface Daemon statistics (message counts and sizes, Table 2).
    pub fn daemon_stats(&self) -> capes_agents::InterfaceStats {
        self.daemon.stats()
    }

    /// Monitoring-agent statistics, per node (message sizes, Table 2).
    pub fn monitor_stats(&self) -> Vec<capes_agents::monitoring::MonitoringStats> {
        self.monitors.iter().map(|m| m.stats()).collect()
    }

    // -----------------------------------------------------------------------
    // Staged tick API.
    //
    // One tick = begin_tick (measure + store) → decide + apply_action
    // (skipped for baselines) → training → finish_tick (feedback +
    // bookkeeping). `run_tick` composes the stages with the in-system engine;
    // external drivers such as the fleet daemon interleave the stages of many
    // systems so that all of their decisions collapse into one batched
    // forward pass.
    // -----------------------------------------------------------------------

    /// Measurement stage of one tick: lets the target run for one second,
    /// routes the Monitoring Agents' differential reports and the objective
    /// through the Interface Daemon into the Replay DB (over the configured
    /// [`Transport`]), and — except for baseline measurements, which never
    /// decide — assembles the observation ending at this tick.
    ///
    /// Must be paired with exactly one [`CapesSystem::finish_tick`] call.
    /// Not available on [`Transport::Socket`] — that transport's traffic is
    /// still in flight when this function would need it stored; socket
    /// drivers call [`CapesSystem::measure_tick`], deliver/ingest the
    /// traffic, then [`CapesSystem::complete_measurement`].
    pub fn begin_tick(&mut self, kind: PhaseKind) -> TickMeasurement {
        assert!(
            self.transport != Transport::Socket,
            "begin_tick cannot complete a socket tick; use measure_tick + complete_measurement"
        );
        let mut measurement = self.measure_tick();
        self.complete_measurement(kind, &mut measurement);
        measurement
    }

    /// First half of the measurement stage: lets the target run for one
    /// second and routes the Monitoring Agents' differential reports and the
    /// objective over the configured [`Transport`]. On the in-process
    /// transports the messages land in the daemon immediately; on
    /// [`Transport::Socket`] they are staged in the outbox
    /// ([`CapesSystem::drain_outbox`]) and the measurement is incomplete
    /// until every message has come back through
    /// [`CapesSystem::ingest_message`] and
    /// [`CapesSystem::complete_measurement`] has run.
    ///
    /// The returned measurement's `observation` is `None` until completed.
    pub fn measure_tick(&mut self) -> TickMeasurement {
        // 1. Let the target system run for one second and measure it.
        let tick_data = self.target.step();
        assert_eq!(
            tick_data.num_nodes(),
            self.monitors.len(),
            "target reported an unexpected number of nodes"
        );
        let objective_value = self.objective.evaluate(&tick_data);
        self.throughput_history.push(tick_data.throughput_mbps);

        // 2. Monitoring Agents sample and report differentially; the Interface
        //    Daemon reconstructs and stores the snapshots and the reward.
        let scaled_objective = objective_value * self.hyperparams.reward_scale;
        let per_node_objective = scaled_objective / self.monitors.len() as f64;
        for (node, monitor) in self.monitors.iter_mut().enumerate() {
            let report = monitor.sample(self.tick, &tick_data.per_node_pis[node]);
            Self::route(
                self.transport,
                &mut self.daemon,
                &mut self.outbox,
                &Message::Report(report),
            );
            Self::route(
                self.transport,
                &mut self.daemon,
                &mut self.outbox,
                &Message::Objective {
                    tick: self.tick,
                    node,
                    value: per_node_objective,
                },
            );
        }
        TickMeasurement {
            tick: self.tick,
            throughput_mbps: tick_data.throughput_mbps,
            objective: objective_value,
            observation: None,
        }
    }

    /// Second half of the measurement stage: commits the tick's snapshots
    /// and — except for baseline measurements, which never decide — fills in
    /// the observation ending at this tick. On [`Transport::Socket`] call
    /// this only after every message of the tick has been ingested.
    pub fn complete_measurement(&mut self, kind: PhaseKind, measurement: &mut TickMeasurement) {
        // Commit the tick's staged snapshots in one group (normally a no-op:
        // the daemon flushes itself once the expected node count reports;
        // this covers targets where some nodes skipped the tick).
        self.daemon.flush_snapshots();
        measurement.observation = if kind == PhaseKind::Baseline {
            None
        } else {
            self.db.observation_at(measurement.tick)
        };
    }

    /// Hands a decoded message straight to the Interface Daemon — the return
    /// path for [`Transport::Socket`], whose traffic is decoded by the
    /// socket server rather than the daemon itself. The f32 wire rounding
    /// has already happened during encoding, so the stored values are
    /// bit-identical to [`Transport::Wire`]'s.
    pub fn ingest_message(&mut self, message: &Message) {
        self.daemon.ingest(message);
    }

    /// Drains the outbox of messages staged by [`Transport::Socket`]
    /// measurement ticks, in routing order.
    pub fn drain_outbox<F: FnMut(Message)>(&mut self, mut transmit: F) {
        for message in self.outbox.drain(..) {
            transmit(message);
        }
    }

    /// Number of monitoring agents (one per target node) — the per-tick
    /// socket traffic is two messages (report + objective) per monitor.
    pub fn num_monitors(&self) -> usize {
        self.monitors.len()
    }

    /// Hands a message to the daemon over the configured transport.
    fn route(
        transport: Transport,
        daemon: &mut InterfaceDaemon,
        outbox: &mut Vec<Message>,
        message: &Message,
    ) {
        match transport {
            Transport::InProcess => daemon.ingest(message),
            Transport::Wire => {
                let frame = encode_message(message);
                daemon
                    .ingest_frame(&frame)
                    .expect("self-encoded frames always decode");
            }
            Transport::Socket => outbox.push(message.clone()),
        }
    }

    /// Action stage of one tick: routes a proposal through the Interface
    /// Daemon (Action Checker included) and lets the Control Agent apply
    /// whatever arrives. Call between [`CapesSystem::begin_tick`] and
    /// [`CapesSystem::finish_tick`]; baseline ticks skip it. Takes the
    /// proposal by value so its parameter vector moves into the action
    /// message instead of being re-allocated every tick.
    pub fn apply_action(&mut self, proposal: ProposedAction) {
        self.daemon.broadcast_action(ActionMessage {
            tick: self.tick,
            // Engines that do not reason in the discrete space (the
            // search comparators) record the NULL action.
            action_index: proposal.action_index.unwrap_or(0),
            parameter_values: proposal.params,
        });
        while let Ok(message) = self.control_rx.try_recv() {
            self.control_agent.handle(&message);
        }
        if let Some(values) = self.staged_params.lock().take() {
            self.target.apply_params(&values);
        }
    }

    /// Training stage of one tick: runs the configured number of training
    /// steps against the Replay DB through the in-system engine, returning
    /// the mean prediction error of the steps that actually trained. Engines
    /// that do not learn (and databases still warming up) yield `None`.
    ///
    /// External drivers that train a *shared* agent (the fleet daemon's
    /// round-robin over cluster shards) skip this and pass their own error
    /// into [`CapesSystem::finish_tick`].
    pub fn engine_train_tick(&mut self) -> Option<f64> {
        let mut sum = 0.0;
        let mut count = 0usize;
        for _ in 0..self.hyperparams.train_steps_per_tick {
            if let Some(error) = self.engine.train_step(&self.db) {
                sum += error;
                count += 1;
            }
        }
        (count > 0).then(|| sum / count as f64)
    }

    /// Feedback stage of one tick: records the prediction error, streams the
    /// assembled [`SystemTick`] to the engine (non-baseline) and every
    /// registered observer, and advances the tick counter.
    pub fn finish_tick(
        &mut self,
        kind: PhaseKind,
        measurement: &TickMeasurement,
        action: Option<usize>,
        explored: bool,
        prediction_error: Option<f64>,
    ) -> SystemTick {
        if let Some(error) = prediction_error {
            self.prediction_errors.push((measurement.tick, error));
        }
        let result = SystemTick {
            tick: measurement.tick,
            throughput_mbps: measurement.throughput_mbps,
            objective: measurement.objective,
            action,
            explored,
            prediction_error,
        };
        if kind != PhaseKind::Baseline {
            self.engine.observe(&result);
        }
        for observer in &mut self.observers {
            observer.on_tick(kind, &result);
        }
        self.tick += 1;
        result
    }

    /// Wire format tag of a [`Transport`] (stable across releases — snapshot
    /// compatibility depends on it).
    fn transport_tag(transport: Transport) -> u8 {
        match transport {
            Transport::InProcess => 0,
            Transport::Wire => 1,
            Transport::Socket => 2,
        }
    }

    fn run_tick(&mut self, kind: PhaseKind) -> SystemTick {
        let measurement = self.begin_tick(kind);
        let mut chosen_action = None;
        let mut explored = false;
        if kind != PhaseKind::Baseline {
            let current = self.target.current_params();
            let engine = &mut self.engine;
            let proposal = engine.propose_action(&EngineContext {
                tick: measurement.tick,
                observation: measurement.observation.as_ref(),
                current_params: &current,
                specs: &self.specs,
                explore: kind == PhaseKind::Train,
            });
            chosen_action = proposal.action_index;
            explored = proposal.explored;
            self.apply_action(proposal);
        }
        let prediction_error = if kind == PhaseKind::Train {
            self.engine_train_tick()
        } else {
            None
        };
        self.finish_tick(
            kind,
            &measurement,
            chosen_action,
            explored,
            prediction_error,
        )
    }
}

impl<T: TargetSystem + capes_persist::Persist> CapesSystem<T> {
    /// Serializes the system's full mutable state — target simulation,
    /// Interface Daemon reconstruction/staging state, monitoring caches,
    /// Control Agent caches, staged socket traffic, tick bookkeeping, and
    /// (when the engine is the DRL engine) the complete agent including
    /// optimizer moments and RNG streams — so a freshly-built system of the
    /// same configuration resumes **bit-identically** after
    /// [`CapesSystem::decode_state`].
    ///
    /// The replay store is deliberately *not* part of this payload: stores
    /// may be stripes of a fleet-shared arena, so their owner (the fleet
    /// daemon's checkpoint, or a standalone caller) persists them exactly
    /// once alongside this state.
    pub fn encode_state(&self, w: &mut capes_persist::Writer) {
        use capes_persist::Persist;
        w.put_u8(Self::transport_tag(self.transport));
        w.put_u64(self.tick);
        self.target.encode(w);
        self.monitors.encode(w);
        self.staged_params.lock().encode(w);
        // Socket traffic staged for an external transmitter rides along as
        // wire frames (empty at tick boundaries).
        w.put_usize(self.outbox.len());
        for message in &self.outbox {
            w.put_bytes(&encode_message(message));
        }
        self.throughput_history.encode(w);
        w.put_usize(self.prediction_errors.len());
        for &(tick, error) in &self.prediction_errors {
            w.put_u64(tick);
            w.put_f64(error);
        }
        match self.dqn_agent() {
            Some(agent) => {
                w.put_u8(1);
                agent.encode(w);
            }
            None => w.put_u8(0),
        }
        // The two subsystems whose decoders validate-then-assign internally
        // go last, so every pure decode above them can fail before anything
        // is mutated.
        self.control_agent.encode_state(w);
        self.daemon.encode_state(w);
    }

    /// Restores state captured by [`CapesSystem::encode_state`] into this
    /// system, which must have been assembled with the same configuration
    /// (transport, target geometry, hyperparameter-derived widths, engine
    /// kind). Configuration skew is rejected with a typed error before any
    /// state is overwritten; an error raised later (only possible for a
    /// payload that was deliberately crafted to pass the container CRC)
    /// leaves the system part-restored, and it must be discarded.
    pub fn decode_state(
        &mut self,
        r: &mut capes_persist::Reader<'_>,
    ) -> Result<(), capes_persist::PersistError> {
        use capes_persist::{Persist, PersistError};
        let tag = r.get_u8()?;
        if tag != Self::transport_tag(self.transport) {
            return Err(PersistError::BadValue {
                what: "snapshot transport disagrees with the deployment",
            });
        }
        let tick = r.get_u64()?;
        let target = T::decode(r)?;
        if target.num_nodes() != self.target.num_nodes()
            || target.pis_per_node() != self.target.pis_per_node()
        {
            return Err(PersistError::BadValue {
                what: "snapshot target geometry disagrees with the deployment",
            });
        }
        let monitors = Vec::<MonitoringAgent>::decode(r)?;
        if monitors.len() != self.monitors.len()
            || monitors.iter().enumerate().any(|(i, m)| m.node() != i)
        {
            return Err(PersistError::BadValue {
                what: "snapshot monitor set disagrees with the target geometry",
            });
        }
        let staged = Option::<Vec<f64>>::decode(r)?;
        let outbox_len = r.get_count(1)?;
        let mut outbox = Vec::with_capacity(outbox_len);
        for _ in 0..outbox_len {
            let frame = r.get_bytes()?;
            outbox.push(decode_message(frame).map_err(|_| PersistError::BadValue {
                what: "staged outbox frame does not decode",
            })?);
        }
        let throughput_history = Vec::<f64>::decode(r)?;
        let errors_len = r.get_count(16)?;
        let mut prediction_errors = Vec::with_capacity(errors_len);
        for _ in 0..errors_len {
            prediction_errors.push((r.get_u64()?, r.get_f64()?));
        }
        let agent = match r.get_u8()? {
            0 => None,
            1 => Some(DqnAgent::decode(r)?),
            _ => {
                return Err(PersistError::BadValue {
                    what: "invalid engine-agent tag",
                })
            }
        };
        if agent.is_some() != self.dqn_agent().is_some() {
            return Err(PersistError::BadValue {
                what: "snapshot engine state disagrees with the deployment's engine",
            });
        }
        if let (Some(restored), Some(current)) = (&agent, self.dqn_agent()) {
            if restored.config().observation_size != current.config().observation_size
                || restored.config().num_params != current.config().num_params
            {
                return Err(PersistError::BadValue {
                    what: "snapshot agent geometry disagrees with the deployment",
                });
            }
        }
        // Everything pure decoded and validated; the two self-validating
        // subsystem restores run next, then plain assignments that cannot
        // fail.
        self.control_agent.decode_state(r)?;
        self.daemon.decode_state(r)?;
        self.tick = tick;
        self.target = target;
        self.monitors = monitors;
        *self.staged_params.lock() = staged;
        self.outbox = outbox;
        self.throughput_history = throughput_history;
        self.prediction_errors = prediction_errors;
        if let Some(agent) = agent {
            if let Some(engine) = self.engine.as_any_mut().downcast_mut::<DrlEngine>() {
                engine.replace_agent(agent);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Capes;
    use crate::engine::SearchEngine;
    use crate::target::test_target::QuadraticTarget;
    use crate::tuners::{HillClimbing, RandomSearch};

    fn quick_hyperparams() -> Hyperparameters {
        Hyperparameters {
            sampling_ticks_per_observation: 3,
            exploration_period_ticks: 200,
            adam_learning_rate: 2e-3,
            train_steps_per_tick: 2,
            ..Hyperparameters::quick_test()
        }
    }

    fn quick_system(optimum: f64, seed: u64) -> CapesSystem<QuadraticTarget> {
        Capes::builder(QuadraticTarget::new(optimum))
            .hyperparams(quick_hyperparams())
            .seed(seed)
            .build()
            .expect("valid configuration")
    }

    #[test]
    fn system_assembles_with_correct_dimensions() {
        let system = quick_system(60.0, 1);
        let agent = system.dqn_agent().expect("default engine is the DQN");
        // 3 sampling ticks × 1 node × 2 PIs per node.
        assert_eq!(agent.config().observation_size, 6);
        assert_eq!(agent.action_space().len(), 3);
        assert_eq!(system.current_params(), vec![10.0]);
        assert_eq!(system.tick(), 0);
        assert!(system.throughput_history().is_empty());
        assert_eq!(system.engine().name(), "deep RL (DQN)");
    }

    #[test]
    fn baseline_ticks_never_touch_parameters() {
        let mut system = quick_system(60.0, 2);
        for _ in 0..50 {
            let t = system.baseline_tick();
            assert!(t.action.is_none());
            assert!(t.prediction_error.is_none());
        }
        assert_eq!(system.current_params(), vec![10.0]);
        assert_eq!(system.throughput_history().len(), 50);
        // Baseline ticks still feed the replay DB (monitoring is always on).
        assert_eq!(system.replay_db().len(), 50);
    }

    #[test]
    fn training_ticks_record_actions_and_prediction_errors() {
        let mut system = quick_system(60.0, 3);
        let mut saw_training = false;
        for _ in 0..80 {
            let t = system.training_tick();
            assert!(t.action.is_some());
            if t.prediction_error.is_some() {
                saw_training = true;
            }
        }
        assert!(saw_training, "training steps should have run");
        assert!(!system.prediction_errors().is_empty());
        assert!(system.dqn_agent().unwrap().training_steps() > 0);
        // Actions were recorded in the replay DB.
        let recorded = system
            .replay_db()
            .with_read(|db| (0..80).filter(|&t| db.action_at(t).is_some()).count());
        assert!(recorded > 70);
    }

    #[test]
    fn training_moves_parameters_toward_the_optimum() {
        // The synthetic target peaks at 60 while the default is 10; after a
        // few thousand training ticks the policy should have pushed the knob
        // well above its default.
        let mut system = quick_system(60.0, 4);
        for _ in 0..4000 {
            system.training_tick();
        }
        let tuned = system.current_params()[0];
        assert!(
            tuned > 25.0,
            "expected the knob to move toward 60, got {tuned}"
        );
        // And tuned throughput beats the default-parameter throughput.
        let tuned_tp: f64 = {
            let mut sum = 0.0;
            for _ in 0..100 {
                sum += system.tuning_tick().throughput_mbps;
            }
            sum / 100.0
        };
        system.reset_params_to_defaults();
        let baseline_tp: f64 = {
            let mut sum = 0.0;
            for _ in 0..100 {
                sum += system.baseline_tick().throughput_mbps;
            }
            sum / 100.0
        };
        assert!(
            tuned_tp > baseline_tp,
            "tuned {tuned_tp:.1} should beat baseline {baseline_tp:.1}"
        );
    }

    #[test]
    fn workload_change_notification_raises_exploration() {
        let mut system = quick_system(60.0, 5);
        // Train long enough for ε to anneal to the floor.
        for _ in 0..600 {
            system.training_tick();
        }
        let explored_before: usize = (0..100)
            .map(|_| usize::from(system.training_tick().explored))
            .sum();
        system.notify_workload_change();
        let explored_after: usize = (0..100)
            .map(|_| usize::from(system.training_tick().explored))
            .sum();
        assert!(
            explored_after > explored_before,
            "exploration should rise after a workload change ({explored_before} → {explored_after})"
        );
    }

    #[test]
    fn checkpoint_round_trip_through_the_system() {
        let mut path = std::env::temp_dir();
        path.push(format!("capes-system-ckpt-{}.json", std::process::id()));
        let mut system = quick_system(60.0, 6);
        for _ in 0..200 {
            system.training_tick();
        }
        system.save_checkpoint(&path).unwrap();
        let mut fresh = quick_system(60.0, 7);
        fresh.restore_checkpoint(&path, 8).unwrap();
        assert_eq!(
            fresh.dqn_agent().unwrap().q_network().observation_size(),
            system.dqn_agent().unwrap().q_network().observation_size()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpointing_a_search_engine_is_a_typed_error() {
        let mut system = Capes::builder(QuadraticTarget::new(60.0))
            .hyperparams(quick_hyperparams())
            .engine(Box::new(SearchEngine::new(HillClimbing::new(10), 5)))
            .build()
            .unwrap();
        let err = system
            .save_checkpoint("/tmp/never-written.json")
            .unwrap_err();
        assert!(matches!(err, CapesError::EngineUnsupported { .. }));
        let err = system
            .restore_checkpoint("/tmp/never-read.json", 1)
            .unwrap_err();
        // Load fails before the engine check (file missing) — either way a
        // typed error comes back.
        assert!(matches!(
            err,
            CapesError::Checkpoint(_) | CapesError::EngineUnsupported { .. }
        ));
    }

    #[test]
    fn wire_transport_runs_the_same_pipeline_through_the_codec() {
        let mut system = Capes::builder(QuadraticTarget::new(60.0))
            .hyperparams(quick_hyperparams())
            .seed(2)
            .transport(Transport::Wire)
            .build()
            .expect("valid configuration");
        assert_eq!(system.transport(), Transport::Wire);
        for _ in 0..60 {
            let t = system.training_tick();
            assert!(t.action.is_some());
        }
        let stats = system.daemon_stats();
        assert_eq!(stats.reports_received, 60);
        // In-process ingestion never counts bytes; the wire transport must.
        assert!(stats.bytes_received > 0, "wire frames carry real bytes");
        assert_eq!(system.replay_db().len(), 60);
    }

    #[test]
    fn null_engine_system_monitors_without_tuning() {
        let mut system = Capes::builder(QuadraticTarget::new(60.0))
            .hyperparams(quick_hyperparams())
            .engine(Box::new(crate::engine::NullEngine))
            .build()
            .expect("valid configuration");
        assert_eq!(system.engine().name(), "external");
        for _ in 0..40 {
            let t = system.training_tick();
            assert!(t.action.is_none());
            assert!(!t.explored);
            assert!(t.prediction_error.is_none());
        }
        // Proposals hold the current parameters, so nothing ever moves …
        assert_eq!(system.current_params(), vec![10.0]);
        // … but the monitoring pipeline still fills the replay DB.
        assert_eq!(system.replay_db().len(), 40);
    }

    #[test]
    fn staged_tick_api_composes_like_run_tick() {
        // Drive one system through the staged API with an external decision
        // and verify the bookkeeping matches a run_tick-driven system.
        let mut system = Capes::builder(QuadraticTarget::new(60.0))
            .hyperparams(quick_hyperparams())
            .engine(Box::new(crate::engine::NullEngine))
            .seed(5)
            .build()
            .unwrap();
        let specs = system.specs().to_vec();
        for tick in 0..30u64 {
            let m = system.begin_tick(PhaseKind::Train);
            assert_eq!(m.tick, tick);
            // External decision: always push the knob up one step.
            let params = crate::engine::step_params(
                &capes_drl::ActionSpace::new(specs.len()),
                1,
                &system.current_params(),
                &specs,
            );
            let proposal = crate::engine::ProposedAction {
                action_index: Some(1),
                explored: false,
                params,
            };
            system.apply_action(proposal);
            let st = system.finish_tick(PhaseKind::Train, &m, Some(1), false, Some(0.25));
            assert_eq!(st.tick, tick);
            assert_eq!(st.prediction_error, Some(0.25));
        }
        assert_eq!(system.tick(), 30);
        assert_eq!(system.prediction_errors().len(), 30);
        // 30 up-steps of 2.0 from 10.0, clamped at 70 — the external actions
        // were applied through the daemon + control path.
        assert_eq!(system.current_params(), vec![70.0]);
    }

    #[test]
    fn state_round_trip_resumes_bit_identically() {
        use capes_persist::Persist;
        let mut original = quick_system(60.0, 11);
        for _ in 0..150 {
            original.training_tick();
        }
        // Snapshot the replay store alongside the system state — exactly
        // what the fleet checkpoint does with its arena.
        let mut w = capes_persist::Writer::new();
        original.replay_db().with_read(|db| db.encode(&mut w));
        original.encode_state(&mut w);

        // A fresh same-geometry system under a *different* seed: every
        // divergent piece of state must be overwritten by the restore.
        let mut restored = quick_system(60.0, 99);
        let mut r = capes_persist::Reader::new(w.as_slice());
        let db = capes_replay::ReplayDb::decode(&mut r).expect("store decodes");
        restored.replay_db().with_write(|live| *live = db);
        restored.decode_state(&mut r).expect("state decodes");
        r.finish().expect("no trailing bytes");

        assert_eq!(restored.tick(), original.tick());
        assert_eq!(restored.current_params(), original.current_params());
        for _ in 0..60 {
            let a = original.training_tick();
            let b = restored.training_tick();
            assert_eq!(a, b, "restored system diverged at tick {}", a.tick);
        }
        assert_eq!(
            original
                .dqn_agent()
                .unwrap()
                .q_network()
                .distance_to(restored.dqn_agent().unwrap().q_network()),
            0.0,
            "weights must stay bit-identical after resumed training"
        );
        assert_eq!(restored.prediction_errors(), original.prediction_errors());
        assert_eq!(restored.daemon_stats(), original.daemon_stats());
    }

    #[test]
    fn state_restore_rejects_configuration_skew_untouched() {
        let mut original = quick_system(60.0, 12);
        for _ in 0..30 {
            original.training_tick();
        }
        let mut w = capes_persist::Writer::new();
        original.encode_state(&mut w);

        // Transport skew.
        let mut wire = Capes::builder(QuadraticTarget::new(60.0))
            .hyperparams(quick_hyperparams())
            .seed(1)
            .transport(Transport::Wire)
            .build()
            .unwrap();
        let mut r = capes_persist::Reader::new(w.as_slice());
        let err = wire.decode_state(&mut r).unwrap_err();
        assert!(err.to_string().contains("transport"), "got: {err}");
        assert_eq!(wire.tick(), 0, "nothing was overwritten");

        // Observation-width skew (different sampling window → different
        // agent geometry), detected before any assignment.
        let mut narrow = Capes::builder(QuadraticTarget::new(60.0))
            .hyperparams(Hyperparameters {
                sampling_ticks_per_observation: 4,
                ..quick_hyperparams()
            })
            .seed(1)
            .build()
            .unwrap();
        let mut r = capes_persist::Reader::new(w.as_slice());
        let err = narrow.decode_state(&mut r).unwrap_err();
        assert!(err.to_string().contains("agent geometry"), "got: {err}");
        assert_eq!(narrow.tick(), 0);
        assert_eq!(narrow.daemon_stats(), Default::default());

        // Engine skew: a search engine cannot absorb a DRL snapshot.
        let mut search = Capes::builder(QuadraticTarget::new(60.0))
            .hyperparams(quick_hyperparams())
            .engine(Box::new(SearchEngine::new(HillClimbing::new(10), 5)))
            .build()
            .unwrap();
        let mut r = capes_persist::Reader::new(w.as_slice());
        let err = search.decode_state(&mut r).unwrap_err();
        assert!(err.to_string().contains("engine"), "got: {err}");
    }

    #[test]
    fn daemon_and_monitor_stats_accumulate() {
        let mut system = quick_system(60.0, 9);
        for _ in 0..20 {
            system.training_tick();
        }
        let stats = system.daemon_stats();
        assert_eq!(stats.reports_received, 20);
        assert_eq!(stats.objectives_recorded, 20);
        assert!(stats.actions_broadcast > 0);
        let monitor_stats = system.monitor_stats();
        assert_eq!(monitor_stats.len(), 1);
        assert_eq!(monitor_stats[0].reports, 20);
        assert!(monitor_stats[0].mean_bytes_per_report() > 0.0);
    }

    #[test]
    fn tuned_phase_after_baseline_reapplies_the_engines_parameters() {
        // Regression test: `reset_params_to_defaults` bypasses the control
        // path, so a Train → Baseline → Tuned plan with an engine that
        // re-proposes its previous best must still get those parameters
        // applied during the tuned phase (the Control Agent's deduplication
        // cache is invalidated by the reset).
        let mut system = Capes::builder(QuadraticTarget::new(60.0))
            .hyperparams(quick_hyperparams())
            .engine(Box::new(SearchEngine::new(RandomSearch::new(20, 3), 10)))
            .build()
            .unwrap();
        for _ in 0..300 {
            system.training_tick();
        }
        assert!(system.engine().is_converged());
        let best = system.engine().current_params().expect("search has a best");
        assert_ne!(best, vec![10.0], "search should have moved off the default");
        // Baseline phase: parameters reset to defaults outside the control
        // path.
        let baseline = system.run_phase(&Phase::Baseline { ticks: 5 });
        assert_eq!(baseline.final_params, vec![10.0]);
        assert_eq!(system.current_params(), vec![10.0]);
        // Tuned: the engine re-proposes `best`; it must take effect again.
        system.tuning_tick();
        assert_eq!(
            system.current_params(),
            best,
            "tuned phase must re-apply the engine's parameters after a baseline reset"
        );
    }

    #[test]
    fn search_engine_drives_through_the_same_system_path() {
        // A search comparator plugged into the full pipeline: training ticks
        // walk its candidates through daemon + checker, tuned ticks exploit
        // the best candidate found.
        let mut system = Capes::builder(QuadraticTarget::new(60.0))
            .hyperparams(quick_hyperparams())
            .engine(Box::new(SearchEngine::new(RandomSearch::new(30, 5), 10)))
            .build()
            .unwrap();
        for _ in 0..400 {
            system.training_tick();
        }
        assert!(
            system.engine().is_converged(),
            "31 candidates × 10 ticks < 400"
        );
        let best = system
            .engine()
            .current_params()
            .expect("search engines expose their best");
        let t = system.tuning_tick();
        assert!(!t.explored);
        assert_eq!(system.current_params(), best);
        // The random search on an easy 1-D surface lands near the optimum.
        assert!(
            (best[0] - 60.0).abs() < 40.0,
            "best candidate {} should be near 60",
            best[0]
        );
    }
}
