//! The assembled CAPES system (Figure 1): Monitoring Agents feeding an
//! Interface Daemon that writes the Replay DB, a DRL engine that trains on it
//! and suggests actions, an Action Checker screening those actions, and a
//! Control Agent applying them to the target system.

use crate::hyperparams::Hyperparameters;
use crate::objective::Objective;
use crate::target::{TargetSystem, TunableSpec};
use capes_agents::{ActionChecker, ActionMessage, ControlAgent, InterfaceDaemon, Message, MonitoringAgent};
use capes_drl::{ActionSpace, DqnAgent};
use capes_replay::{ReplayConfig, SharedReplayDb};
use crossbeam::channel::{unbounded, Receiver};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::Path;
use std::sync::Arc;

/// How a tick is driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TickMode {
    /// ε-greedy actions plus training steps (the paper's training session).
    Training,
    /// Greedy actions, no training (measuring tuned performance).
    Tuning,
    /// No actions at all (measuring the untuned baseline).
    Baseline,
}

/// Everything that happened during one system tick.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemTick {
    /// Simulated tick index.
    pub tick: u64,
    /// Aggregate throughput achieved by the target system, MB/s.
    pub throughput_mbps: f64,
    /// Objective-function output (the reward source).
    pub objective: f64,
    /// Action index chosen this tick, if any.
    pub action: Option<usize>,
    /// Whether the action was exploratory (random).
    pub explored: bool,
    /// Prediction error of the training step(s) run this tick, if any.
    pub prediction_error: Option<f64>,
}

/// The CAPES system wired around a target system.
pub struct CapesSystem<T: TargetSystem> {
    target: T,
    hyperparams: Hyperparameters,
    objective: Objective,
    db: SharedReplayDb,
    daemon: InterfaceDaemon,
    monitors: Vec<MonitoringAgent>,
    control_rx: Receiver<ActionMessage>,
    control_agent: ControlAgent<Box<dyn FnMut(&[f64]) + Send>>,
    staged_params: Arc<Mutex<Option<Vec<f64>>>>,
    agent: DqnAgent,
    action_space: ActionSpace,
    specs: Vec<TunableSpec>,
    tick: u64,
    rng: StdRng,
    throughput_history: Vec<f64>,
    prediction_errors: Vec<(u64, f64)>,
}

impl<T: TargetSystem> CapesSystem<T> {
    /// Builds a CAPES deployment around `target` with the default
    /// (throughput) objective and a permissive Action Checker, matching the
    /// paper's evaluation configuration.
    pub fn new(target: T, hyperparams: Hyperparameters, seed: u64) -> Self {
        Self::with_objective_and_checker(
            target,
            hyperparams,
            Objective::Throughput,
            ActionChecker::permissive(),
            seed,
        )
    }

    /// Fully-configurable constructor: custom objective function and Action
    /// Checker.
    pub fn with_objective_and_checker(
        target: T,
        hyperparams: Hyperparameters,
        objective: Objective,
        checker: ActionChecker,
        seed: u64,
    ) -> Self {
        hyperparams.validate();
        let num_nodes = target.num_nodes();
        let pis_per_node = target.pis_per_node();
        let specs = target.tunable_specs();
        assert!(!specs.is_empty(), "target has no tunable parameters");

        let replay_config = ReplayConfig {
            num_nodes,
            pis_per_node,
            ticks_per_observation: hyperparams.sampling_ticks_per_observation,
            missing_entry_tolerance: hyperparams.missing_entry_tolerance,
            capacity_ticks: hyperparams.replay_capacity_ticks,
        };
        let db = SharedReplayDb::new(replay_config);
        let mut daemon = InterfaceDaemon::new(db.clone(), num_nodes, checker);

        let (control_tx, control_rx) = unbounded();
        daemon.register_control_channel(control_tx);
        let staged_params: Arc<Mutex<Option<Vec<f64>>>> = Arc::new(Mutex::new(None));
        let staging = staged_params.clone();
        let setter: Box<dyn FnMut(&[f64]) + Send> =
            Box::new(move |values: &[f64]| *staging.lock() = Some(values.to_vec()));
        let control_agent = ControlAgent::new(0, setter);

        let monitors = (0..num_nodes).map(|n| MonitoringAgent::new(n, 0.0)).collect();

        let observation_size = replay_config.observation_size();
        let agent_config = hyperparams.agent_config(observation_size, specs.len());
        let agent = DqnAgent::new(agent_config, seed ^ 0x5eed);
        let action_space = ActionSpace::new(specs.len());

        CapesSystem {
            target,
            hyperparams,
            objective,
            db,
            daemon,
            monitors,
            control_rx,
            control_agent,
            staged_params,
            agent,
            action_space,
            specs,
            tick: 0,
            rng: StdRng::seed_from_u64(seed),
            throughput_history: Vec::new(),
            prediction_errors: Vec::new(),
        }
    }

    /// The target system (read access).
    pub fn target(&self) -> &T {
        &self.target
    }

    /// The target system (mutable access, e.g. to change its workload).
    pub fn target_mut(&mut self) -> &mut T {
        &mut self.target
    }

    /// The hyperparameters in force.
    pub fn hyperparams(&self) -> &Hyperparameters {
        &self.hyperparams
    }

    /// The shared replay database.
    pub fn replay_db(&self) -> &SharedReplayDb {
        &self.db
    }

    /// The DRL agent.
    pub fn agent(&self) -> &DqnAgent {
        &self.agent
    }

    /// Current tick (seconds since the system was assembled).
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Per-tick aggregate throughput observed so far.
    pub fn throughput_history(&self) -> &[f64] {
        &self.throughput_history
    }

    /// `(tick, prediction error)` series collected from training steps —
    /// the data behind Figure 5.
    pub fn prediction_errors(&self) -> &[(u64, f64)] {
        &self.prediction_errors
    }

    /// The parameter values the target system is currently using.
    pub fn current_params(&self) -> Vec<f64> {
        self.target.current_params()
    }

    /// Resets every tunable parameter to its default value (used before
    /// baseline measurements).
    pub fn reset_params_to_defaults(&mut self) {
        let defaults: Vec<f64> = self.specs.iter().map(|s| s.default).collect();
        self.target.apply_params(&defaults);
    }

    /// Signals a scheduled workload change: exploration is bumped back up
    /// (paper §3.6) and the daemon is informed.
    pub fn notify_workload_change(&mut self) {
        self.agent
            .notify_workload_change(self.tick, self.hyperparams.workload_change_bump_ticks);
        self.daemon.ingest(&Message::WorkloadChange { tick: self.tick });
    }

    /// One training tick: measure, store, act ε-greedily, train.
    pub fn training_tick(&mut self) -> SystemTick {
        self.run_tick(TickMode::Training)
    }

    /// One tuning tick: measure, store, act greedily, no training.
    pub fn tuning_tick(&mut self) -> SystemTick {
        self.run_tick(TickMode::Tuning)
    }

    /// One baseline tick: measure and store only; parameters stay untouched.
    pub fn baseline_tick(&mut self) -> SystemTick {
        self.run_tick(TickMode::Baseline)
    }

    /// Saves the DRL agent's networks to a checkpoint file.
    pub fn save_checkpoint<P: AsRef<Path>>(&self, path: P) -> Result<(), std::io::Error> {
        self.agent.save_checkpoint(path)
    }

    /// Replaces the DRL agent with one restored from a checkpoint (the
    /// Figure-4 protocol: reuse a trained model in a later session).
    pub fn restore_checkpoint<P: AsRef<Path>>(
        &mut self,
        path: P,
        seed: u64,
    ) -> Result<(), std::io::Error> {
        let restored = DqnAgent::load_checkpoint(path, seed)?;
        assert_eq!(
            restored.config().observation_size,
            self.agent.config().observation_size,
            "checkpoint was trained for a different observation size"
        );
        self.agent = restored;
        Ok(())
    }

    /// Interface Daemon statistics (message counts and sizes, Table 2).
    pub fn daemon_stats(&self) -> capes_agents::InterfaceStats {
        self.daemon.stats()
    }

    /// Monitoring-agent statistics, per node (message sizes, Table 2).
    pub fn monitor_stats(&self) -> Vec<capes_agents::monitoring::MonitoringStats> {
        self.monitors.iter().map(|m| m.stats()).collect()
    }

    fn run_tick(&mut self, mode: TickMode) -> SystemTick {
        // 1. Let the target system run for one second and measure it.
        let tick_data = self.target.step();
        assert_eq!(
            tick_data.num_nodes(),
            self.monitors.len(),
            "target reported an unexpected number of nodes"
        );
        let objective_value = self.objective.evaluate(&tick_data);
        self.throughput_history.push(tick_data.throughput_mbps);

        // 2. Monitoring Agents sample and report differentially; the Interface
        //    Daemon reconstructs and stores the snapshots and the reward.
        let scaled_objective = objective_value * self.hyperparams.reward_scale;
        let per_node_objective = scaled_objective / self.monitors.len() as f64;
        for (node, monitor) in self.monitors.iter_mut().enumerate() {
            let report = monitor.sample(self.tick, &tick_data.per_node_pis[node]);
            self.daemon.ingest(&Message::Report(report));
            self.daemon.ingest(&Message::Objective {
                tick: self.tick,
                node,
                value: per_node_objective,
            });
        }

        // 3. Decide on an action (unless this is a baseline measurement).
        let mut chosen_action = None;
        let mut explored = false;
        if mode != TickMode::Baseline {
            let observation = self.db.observation_at(self.tick);
            let (action, was_random) = match (&observation, mode) {
                (Some(obs), TickMode::Training) => {
                    let decision = self.agent.select_action(obs, self.tick);
                    (decision.action, decision.explored)
                }
                (Some(obs), _) => (self.agent.greedy_action(obs), false),
                (None, TickMode::Training) => {
                    // Not enough history for an observation yet: explore.
                    (self.rng.gen_range(0..self.action_space.len()), true)
                }
                (None, _) => (self.action_space.encode(capes_drl::Action::Null), false),
            };
            chosen_action = Some(action);
            explored = was_random;

            // Translate the action into absolute parameter values.
            let directions = self.action_space.direction_vector(action);
            let current = self.target.current_params();
            let proposed: Vec<f64> = current
                .iter()
                .zip(directions.iter())
                .zip(self.specs.iter())
                .map(|((&value, &dir), spec)| spec.clamp(value + dir * spec.step))
                .collect();

            // Broadcast through the daemon (Action Checker included), then let
            // the Control Agent apply whatever arrives.
            self.daemon.broadcast_action(ActionMessage {
                tick: self.tick,
                action_index: action,
                parameter_values: proposed,
            });
            while let Ok(message) = self.control_rx.try_recv() {
                self.control_agent.handle(&message);
            }
            if let Some(values) = self.staged_params.lock().take() {
                self.target.apply_params(&values);
            }
        }

        // 4. Training steps (experience replay).
        let mut prediction_error = None;
        if mode == TickMode::Training {
            let mut sum = 0.0;
            let mut count = 0usize;
            for _ in 0..self.hyperparams.train_steps_per_tick {
                if let Ok(Some(report)) = self.agent.train_from_db(&self.db) {
                    sum += report.prediction_error;
                    count += 1;
                }
            }
            if count > 0 {
                let mean = sum / count as f64;
                prediction_error = Some(mean);
                self.prediction_errors.push((self.tick, mean));
            }
        }

        let result = SystemTick {
            tick: self.tick,
            throughput_mbps: tick_data.throughput_mbps,
            objective: objective_value,
            action: chosen_action,
            explored,
            prediction_error,
        };
        self.tick += 1;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::test_target::QuadraticTarget;

    fn quick_system(optimum: f64, seed: u64) -> CapesSystem<QuadraticTarget> {
        let hp = Hyperparameters {
            sampling_ticks_per_observation: 3,
            exploration_period_ticks: 200,
            adam_learning_rate: 2e-3,
            train_steps_per_tick: 2,
            ..Hyperparameters::quick_test()
        };
        CapesSystem::new(QuadraticTarget::new(optimum), hp, seed)
    }

    #[test]
    fn system_assembles_with_correct_dimensions() {
        let system = quick_system(60.0, 1);
        assert_eq!(system.agent().config().observation_size, 3 * 1 * 2);
        assert_eq!(system.agent().action_space().len(), 3);
        assert_eq!(system.current_params(), vec![10.0]);
        assert_eq!(system.tick(), 0);
        assert!(system.throughput_history().is_empty());
    }

    #[test]
    fn baseline_ticks_never_touch_parameters() {
        let mut system = quick_system(60.0, 2);
        for _ in 0..50 {
            let t = system.baseline_tick();
            assert!(t.action.is_none());
            assert!(t.prediction_error.is_none());
        }
        assert_eq!(system.current_params(), vec![10.0]);
        assert_eq!(system.throughput_history().len(), 50);
        // Baseline ticks still feed the replay DB (monitoring is always on).
        assert_eq!(system.replay_db().len(), 50);
    }

    #[test]
    fn training_ticks_record_actions_and_prediction_errors() {
        let mut system = quick_system(60.0, 3);
        let mut saw_training = false;
        for _ in 0..80 {
            let t = system.training_tick();
            assert!(t.action.is_some());
            if t.prediction_error.is_some() {
                saw_training = true;
            }
        }
        assert!(saw_training, "training steps should have run");
        assert!(!system.prediction_errors().is_empty());
        assert!(system.agent().training_steps() > 0);
        // Actions were recorded in the replay DB.
        let recorded = system
            .replay_db()
            .with_read(|db| (0..80).filter(|&t| db.action_at(t).is_some()).count());
        assert!(recorded > 70);
    }

    #[test]
    fn training_moves_parameters_toward_the_optimum() {
        // The synthetic target peaks at 60 while the default is 10; after a
        // few thousand training ticks the policy should have pushed the knob
        // well above its default.
        let mut system = quick_system(60.0, 4);
        for _ in 0..4000 {
            system.training_tick();
        }
        let tuned = system.current_params()[0];
        assert!(
            tuned > 25.0,
            "expected the knob to move toward 60, got {tuned}"
        );
        // And tuned throughput beats the default-parameter throughput.
        let tuned_tp: f64 = {
            let mut sum = 0.0;
            for _ in 0..100 {
                sum += system.tuning_tick().throughput_mbps;
            }
            sum / 100.0
        };
        system.reset_params_to_defaults();
        let baseline_tp: f64 = {
            let mut sum = 0.0;
            for _ in 0..100 {
                sum += system.baseline_tick().throughput_mbps;
            }
            sum / 100.0
        };
        assert!(
            tuned_tp > baseline_tp,
            "tuned {tuned_tp:.1} should beat baseline {baseline_tp:.1}"
        );
    }

    #[test]
    fn workload_change_notification_raises_exploration() {
        let mut system = quick_system(60.0, 5);
        // Train long enough for ε to anneal to the floor.
        for _ in 0..600 {
            system.training_tick();
        }
        let explored_before: usize = (0..100)
            .map(|_| usize::from(system.training_tick().explored))
            .sum();
        system.notify_workload_change();
        let explored_after: usize = (0..100)
            .map(|_| usize::from(system.training_tick().explored))
            .sum();
        assert!(
            explored_after > explored_before,
            "exploration should rise after a workload change ({explored_before} → {explored_after})"
        );
    }

    #[test]
    fn checkpoint_round_trip_through_the_system() {
        let mut path = std::env::temp_dir();
        path.push(format!("capes-system-ckpt-{}.json", std::process::id()));
        let mut system = quick_system(60.0, 6);
        for _ in 0..200 {
            system.training_tick();
        }
        system.save_checkpoint(&path).unwrap();
        let mut fresh = quick_system(60.0, 7);
        fresh.restore_checkpoint(&path, 8).unwrap();
        assert_eq!(
            fresh.agent().q_network().observation_size(),
            system.agent().q_network().observation_size()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn daemon_and_monitor_stats_accumulate() {
        let mut system = quick_system(60.0, 9);
        for _ in 0..20 {
            system.training_tick();
        }
        let stats = system.daemon_stats();
        assert_eq!(stats.reports_received, 20);
        assert_eq!(stats.objectives_recorded, 20);
        assert!(stats.actions_broadcast > 0);
        let monitor_stats = system.monitor_stats();
        assert_eq!(monitor_stats.len(), 1);
        assert_eq!(monitor_stats[0].reports, 20);
        assert!(monitor_stats[0].mean_bytes_per_report() > 0.0);
    }
}
