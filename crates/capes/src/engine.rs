//! The unified tuning-engine interface.
//!
//! The paper's evaluation pits the DRL engine against search-based prior work
//! (random search, hill climbing, static defaults). Before this module each
//! comparator had its own driver loop; now every decision maker implements
//! [`TuningEngine`] and [`crate::system::CapesSystem`] drives whichever engine
//! it was built with through one generic per-tick code path — monitoring
//! agents, Interface Daemon, Action Checker and Replay DB stay identical
//! across engines, exactly as the paper's architecture intends.
//!
//! Two engine families ship with the crate:
//!
//! * [`DrlEngine`] — the deep-Q-network engine (paper §3.4–§3.6), wrapping
//!   [`capes_drl::DqnAgent`];
//! * [`SearchEngine`] — an online evaluator for classic one-shot search
//!   methods; any [`SearchStrategy`] (the comparators in [`crate::tuners`])
//!   plugs into it.
//!
//! Because actions are proposed once per tick *after* the tick has been
//! measured, the first measurement attributed to a fresh search candidate
//! still reflects its predecessor's parameters; with evaluation windows of
//! tens of ticks the bias is negligible (and matches the paper's one-second
//! action loop).

use crate::system::SystemTick;
use crate::target::{TargetSystem, TunableSpec};
use crate::tuners::TunerResult;
use capes_drl::{ActionSpace, DqnAgent, SamplingScope};
use capes_replay::{Observation, SharedReplayDb};
use std::any::Any;

/// Everything an engine may inspect when proposing an action for one tick.
#[derive(Debug)]
pub struct EngineContext<'a> {
    /// Current action tick.
    pub tick: u64,
    /// The flattened observation ending at this tick, if the replay DB has
    /// accumulated enough history to build one.
    pub observation: Option<&'a Observation>,
    /// Parameter values the target system is currently using.
    pub current_params: &'a [f64],
    /// The tunable-parameter specifications of the target.
    pub specs: &'a [TunableSpec],
    /// `true` during training/search phases (the engine may explore),
    /// `false` during tuned measurements (the engine should exploit).
    pub explore: bool,
}

/// An engine's decision for one tick.
#[derive(Debug, Clone, PartialEq)]
pub struct ProposedAction {
    /// Index in the `2P + 1` discrete action space, when the engine reasons
    /// in ±step actions (the DRL engine). Recorded in the Replay DB.
    pub action_index: Option<usize>,
    /// Whether the proposal was exploratory.
    pub explored: bool,
    /// Absolute parameter values the target should use next.
    pub params: Vec<f64>,
}

/// A decision maker the CAPES system can be built around.
///
/// Implemented by the DQN-backed [`DrlEngine`] and by [`SearchEngine`] for
/// the three search comparators, so sessions, experiments and benches drive
/// any engine through a single generic code path.
///
/// Engines must be [`Send`]: the fleet daemon shards its member systems
/// (each of which owns a boxed engine) across worker threads, one cluster
/// owned by exactly one worker per tick phase.
pub trait TuningEngine: Any + Send {
    /// Human-readable engine name used in logs and benchmark output.
    fn name(&self) -> &str;

    /// Proposes the parameter values for the next tick.
    fn propose_action(&mut self, ctx: &EngineContext<'_>) -> ProposedAction;

    /// Receives the measured outcome of a tick (called once per tick, after
    /// the measurement that the engine's previous proposal influenced).
    fn observe(&mut self, tick: &SystemTick);

    /// Runs one training step against the replay database, returning the
    /// step's prediction error. Engines that do not learn return `None`.
    fn train_step(&mut self, db: &SharedReplayDb) -> Option<f64>;

    /// The engine's own estimate of the best parameter vector, if it keeps
    /// one (`None` means "whatever the target currently uses").
    fn current_params(&self) -> Option<Vec<f64>>;

    /// Signals a scheduled workload change (paper §3.6). Default: ignored.
    fn notify_workload_change(&mut self, _tick: u64, _bump_ticks: u64) {}

    /// `true` once the engine has finished searching and further exploration
    /// ticks would not change its proposal. Always `false` for online
    /// learners.
    fn is_converged(&self) -> bool {
        false
    }

    /// Exploration ticks the engine actually consumed searching, when it
    /// tracks them (`None` for online learners, which use every training
    /// tick they are given).
    fn exploration_ticks_used(&self) -> Option<u64> {
        None
    }

    /// Upcast for engine-specific access (e.g. checkpointing the DQN).
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

// ---------------------------------------------------------------------------
// The DRL engine.
// ---------------------------------------------------------------------------

/// The deep-Q-network engine: ε-greedy ±step actions plus experience-replay
/// training (paper §3.4–§3.7).
#[derive(Debug, Clone)]
pub struct DrlEngine {
    agent: DqnAgent,
    action_space: ActionSpace,
    scope: SamplingScope,
}

impl DrlEngine {
    /// Wraps a DQN agent as a tuning engine sampling its own replay stripe
    /// ([`SamplingScope::Own`], the pre-arena behaviour).
    pub fn new(agent: DqnAgent) -> Self {
        Self::with_scope(agent, SamplingScope::Own)
    }

    /// Wraps a DQN agent with an explicit replay [`SamplingScope`]: an
    /// engine scoped to a profile trains on a weighted stripe set of the
    /// system's replay arena instead of the system's own stripe only.
    pub fn with_scope(agent: DqnAgent, scope: SamplingScope) -> Self {
        DrlEngine {
            action_space: agent.action_space(),
            agent,
            scope,
        }
    }

    /// The wrapped agent.
    pub fn agent(&self) -> &DqnAgent {
        &self.agent
    }

    /// Mutable access to the wrapped agent.
    pub fn agent_mut(&mut self) -> &mut DqnAgent {
        &mut self.agent
    }

    /// The replay sampling scope training steps use.
    pub fn scope(&self) -> &SamplingScope {
        &self.scope
    }

    /// Replaces the replay sampling scope.
    pub fn set_scope(&mut self, scope: SamplingScope) {
        self.scope = scope;
    }

    /// Replaces the wrapped agent (checkpoint restoration).
    pub fn replace_agent(&mut self, agent: DqnAgent) {
        self.action_space = agent.action_space();
        self.agent = agent;
    }
}

/// Maps a discrete `2P + 1` action index onto the absolute parameter vector
/// the target should use next: ±one `step` on the touched parameter, clamped
/// into its spec range. Shared by [`DrlEngine::propose_action`] and the fleet
/// daemon's batched scatter path so both produce identical proposals.
pub fn step_params(
    space: &ActionSpace,
    action: usize,
    current: &[f64],
    specs: &[TunableSpec],
) -> Vec<f64> {
    let directions = space.direction_vector(action);
    current
        .iter()
        .zip(directions.iter())
        .zip(specs.iter())
        .map(|((&value, &dir), spec)| spec.clamp(value + dir * spec.step))
        .collect()
}

impl TuningEngine for DrlEngine {
    fn name(&self) -> &str {
        "deep RL (DQN)"
    }

    fn propose_action(&mut self, ctx: &EngineContext<'_>) -> ProposedAction {
        let decision = self.agent.decide(ctx.observation, ctx.tick, !ctx.explore);
        ProposedAction {
            action_index: Some(decision.action),
            explored: decision.explored,
            params: step_params(
                &self.action_space,
                decision.action,
                ctx.current_params,
                ctx.specs,
            ),
        }
    }

    fn observe(&mut self, _tick: &SystemTick) {
        // The DQN learns from the replay DB, not from direct feedback.
    }

    fn train_step(&mut self, db: &SharedReplayDb) -> Option<f64> {
        match self.agent.train_scoped(db, &self.scope) {
            Ok(Some(report)) => Some(report.prediction_error),
            _ => None,
        }
    }

    fn current_params(&self) -> Option<Vec<f64>> {
        None
    }

    fn notify_workload_change(&mut self, tick: u64, bump_ticks: u64) {
        self.agent.notify_workload_change(tick, bump_ticks);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

// ---------------------------------------------------------------------------
// Search engines.
// ---------------------------------------------------------------------------

/// A candidate-proposing search method (the strategy half of
/// [`SearchEngine`]). Implemented by the comparators in [`crate::tuners`].
/// `Send` because the wrapping [`SearchEngine`] is a [`TuningEngine`], which
/// fleet worker threads may carry across threads.
pub trait SearchStrategy: Send {
    /// Name used in logs and benchmark output.
    fn name(&self) -> &'static str;

    /// The first candidate to evaluate (default: the target's defaults).
    fn initial_candidate(&mut self, specs: &[TunableSpec]) -> Vec<f64> {
        specs.iter().map(|s| s.default).collect()
    }

    /// Given the score of the last candidate and the running best, produces
    /// the next candidate to evaluate, or `None` when the search is done.
    fn next_candidate(
        &mut self,
        specs: &[TunableSpec],
        last: &[f64],
        last_score: f64,
        best: (&[f64], f64),
        evaluations: usize,
    ) -> Option<Vec<f64>>;
}

/// Drives any [`SearchStrategy`] through the [`TuningEngine`] interface:
/// each candidate is held for a fixed evaluation window of exploration ticks,
/// scored by mean objective value, and the best candidate wins. Once the
/// strategy stops proposing candidates the engine is converged and proposes
/// the best parameters forever (its "tuned" policy).
#[derive(Debug, Clone)]
pub struct SearchEngine<S: SearchStrategy> {
    strategy: S,
    eval_ticks: u64,
    specs: Vec<TunableSpec>,
    current: Vec<f64>,
    started: bool,
    exploring: bool,
    ticks_in_candidate: u64,
    score_acc: f64,
    best: Option<(Vec<f64>, f64)>,
    evaluations: usize,
    ticks_used: u64,
    converged: bool,
}

impl<S: SearchStrategy> SearchEngine<S> {
    /// Wraps `strategy`, evaluating each candidate for `eval_ticks` ticks.
    ///
    /// # Panics
    /// Panics if `eval_ticks` is zero.
    pub fn new(strategy: S, eval_ticks: u64) -> Self {
        assert!(
            eval_ticks > 0,
            "evaluation window must be at least one tick"
        );
        SearchEngine {
            strategy,
            eval_ticks,
            specs: Vec::new(),
            current: Vec::new(),
            started: false,
            exploring: false,
            ticks_in_candidate: 0,
            score_acc: 0.0,
            best: None,
            evaluations: 0,
            ticks_used: 0,
            converged: false,
        }
    }

    /// The best `(params, mean objective)` found so far.
    pub fn best(&self) -> Option<(&[f64], f64)> {
        self.best.as_ref().map(|(p, s)| (p.as_slice(), *s))
    }

    /// Candidate evaluations completed so far.
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// Exploration ticks consumed so far (the tuning cost).
    pub fn ticks_used(&self) -> u64 {
        self.ticks_used
    }

    /// The wrapped strategy.
    pub fn strategy(&self) -> &S {
        &self.strategy
    }

    /// Summarises the finished search as a [`TunerResult`].
    pub fn result(&self) -> TunerResult {
        let (best_params, best_throughput) = match &self.best {
            Some((p, s)) => (p.clone(), *s),
            None => (self.current.clone(), 0.0),
        };
        TunerResult {
            best_params,
            best_throughput,
            evaluations: self.evaluations,
            ticks_used: self.ticks_used,
        }
    }

    fn finish_candidate(&mut self) {
        let score = self.score_acc / self.ticks_in_candidate.max(1) as f64;
        self.evaluations += 1;
        let improved = match &self.best {
            Some((_, best_score)) => score > *best_score,
            None => true,
        };
        if improved {
            self.best = Some((self.current.clone(), score));
        }
        let best_ref = self.best.as_ref().expect("best set above");
        let next = self.strategy.next_candidate(
            &self.specs,
            &self.current,
            score,
            (&best_ref.0, best_ref.1),
            self.evaluations,
        );
        match next {
            Some(candidate) => {
                self.current = candidate;
                self.ticks_in_candidate = 0;
                self.score_acc = 0.0;
            }
            None => self.converged = true,
        }
    }
}

impl<S: SearchStrategy + 'static> TuningEngine for SearchEngine<S> {
    fn name(&self) -> &str {
        self.strategy.name()
    }

    fn propose_action(&mut self, ctx: &EngineContext<'_>) -> ProposedAction {
        if !self.started {
            self.specs = ctx.specs.to_vec();
            self.current = self.strategy.initial_candidate(ctx.specs);
            self.started = true;
        }
        self.exploring = ctx.explore && !self.converged;
        let params = if self.exploring {
            self.current.clone()
        } else {
            // Exploit: the best candidate found so far (or the current one if
            // nothing has finished evaluating yet).
            self.best
                .as_ref()
                .map(|(p, _)| p.clone())
                .unwrap_or_else(|| self.current.clone())
        };
        ProposedAction {
            action_index: None,
            explored: self.exploring,
            params,
        }
    }

    fn observe(&mut self, tick: &SystemTick) {
        if !self.exploring {
            return;
        }
        self.score_acc += tick.objective;
        self.ticks_in_candidate += 1;
        self.ticks_used += 1;
        if self.ticks_in_candidate >= self.eval_ticks {
            self.finish_candidate();
        }
    }

    fn train_step(&mut self, _db: &SharedReplayDb) -> Option<f64> {
        None
    }

    fn current_params(&self) -> Option<Vec<f64>> {
        self.best.as_ref().map(|(p, _)| p.clone())
    }

    fn is_converged(&self) -> bool {
        self.converged
    }

    fn exploration_ticks_used(&self) -> Option<u64> {
        Some(self.ticks_used)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

// ---------------------------------------------------------------------------
// The null engine.
// ---------------------------------------------------------------------------

/// An engine that never proposes a change and never trains: every proposal
/// holds the target's current parameters.
///
/// Use it for deployments whose decisions are made *outside* the system's
/// per-tick loop — the fleet daemon drives its member systems this way (one
/// shared DQN decides for every cluster in a single batched forward pass and
/// the resulting actions are applied through
/// [`crate::system::CapesSystem::apply_action`]) — or for pure monitoring
/// setups that want the agents/daemon/replay pipeline without any tuning.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullEngine;

impl TuningEngine for NullEngine {
    fn name(&self) -> &str {
        "external"
    }

    fn propose_action(&mut self, ctx: &EngineContext<'_>) -> ProposedAction {
        ProposedAction {
            action_index: None,
            explored: false,
            params: ctx.current_params.to_vec(),
        }
    }

    fn observe(&mut self, _tick: &SystemTick) {}

    fn train_step(&mut self, _db: &SharedReplayDb) -> Option<f64> {
        None
    }

    fn current_params(&self) -> Option<Vec<f64>> {
        None
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Drives a search engine directly against a bare target system (no
/// monitoring/daemon pipeline), until the strategy converges or `max_ticks`
/// is spent. This is the legacy `Tuner::tune` code path, reimplemented on the
/// engine interface so batch and online searches share one implementation.
pub fn run_search<T: TargetSystem, S: SearchStrategy + 'static>(
    engine: &mut SearchEngine<S>,
    target: &mut T,
    max_ticks: u64,
) -> TunerResult {
    let specs = target.tunable_specs();
    let mut tick = 0u64;
    while !engine.is_converged() && tick < max_ticks {
        let current = target.current_params();
        let proposal = engine.propose_action(&EngineContext {
            tick,
            observation: None,
            current_params: &current,
            specs: &specs,
            explore: true,
        });
        target.apply_params(&proposal.params);
        let measured = target.step();
        engine.observe(&SystemTick {
            tick,
            throughput_mbps: measured.throughput_mbps,
            objective: measured.throughput_mbps,
            action: None,
            explored: proposal.explored,
            prediction_error: None,
        });
        tick += 1;
    }
    // Leave the target configured with the best parameters found.
    if let Some((best, _)) = engine.best() {
        let best = best.to_vec();
        target.apply_params(&best);
    }
    engine.result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::test_target::QuadraticTarget;
    use crate::tuners::{RandomSearch, StaticBaseline};
    use capes_drl::DqnAgentConfig;

    #[test]
    fn drl_engine_proposes_step_actions_within_bounds() {
        let agent = DqnAgent::new(DqnAgentConfig::paper_default(6, 1), 3);
        let mut engine = DrlEngine::new(agent);
        let specs = vec![TunableSpec {
            name: "knob".into(),
            min: 0.0,
            max: 100.0,
            step: 2.0,
            default: 10.0,
        }];
        for tick in 0..50 {
            let proposal = engine.propose_action(&EngineContext {
                tick,
                observation: None,
                current_params: &[10.0],
                specs: &specs,
                explore: true,
            });
            assert!(proposal.action_index.is_some());
            let p = proposal.params[0];
            assert!(
                p == 8.0 || p == 10.0 || p == 12.0,
                "±one step from 10, got {p}"
            );
        }
        // Without an observation and without exploration, the engine holds.
        let proposal = engine.propose_action(&EngineContext {
            tick: 99,
            observation: None,
            current_params: &[10.0],
            specs: &specs,
            explore: false,
        });
        assert_eq!(proposal.params, vec![10.0]);
        assert!(!proposal.explored);
        assert_eq!(engine.name(), "deep RL (DQN)");
        assert!(!engine.is_converged());
    }

    #[test]
    fn search_engine_converges_and_reports_best() {
        let mut engine = SearchEngine::new(RandomSearch::new(25, 9), 10);
        let mut target = QuadraticTarget::new(60.0);
        let result = run_search(&mut engine, &mut target, 100_000);
        assert!(engine.is_converged());
        assert_eq!(result.evaluations, 26, "defaults + 25 candidates");
        assert_eq!(result.ticks_used, 26 * 10);
        assert!(result.best_throughput > 0.0);
        // The target was left configured with the best parameters.
        assert_eq!(target.current_params(), result.best_params);
        // Once converged, exploitation proposes the best candidate.
        let specs = target.tunable_specs();
        let proposal = engine.propose_action(&EngineContext {
            tick: 0,
            observation: None,
            current_params: &result.best_params,
            specs: &specs,
            explore: true,
        });
        assert!(!proposal.explored);
        assert_eq!(proposal.params, result.best_params);
    }

    #[test]
    fn static_baseline_engine_evaluates_once() {
        let mut engine = SearchEngine::new(StaticBaseline, 20);
        let mut target = QuadraticTarget::new(40.0);
        let result = run_search(&mut engine, &mut target, 100_000);
        assert_eq!(result.evaluations, 1);
        assert_eq!(result.best_params, vec![10.0]);
        assert_eq!(engine.name(), "static defaults");
    }
}
