//! # capes
//!
//! CAPES — Computer Automated Performance Enhancement System — is an
//! unsupervised, model-less parameter-tuning system driven by deep
//! reinforcement learning, reproduced from the SC '17 paper by Li et al.
//!
//! This crate is the orchestration layer that ties the substrates together:
//!
//! * [`target::TargetSystem`] — the adapter interface of the paper's
//!   Appendix A: anything that can report per-node performance indicators and
//!   accept parameter values can be tuned;
//! * [`hyperparams::Hyperparameters`] — every hyperparameter of Table 1 with
//!   the paper's values as defaults;
//! * [`objective`] — single- and multi-objective reward functions (§3.2);
//! * [`adapter::SimulatedLustre`] — the bundled adapter that binds the
//!   [`capes_simstore`] cluster simulator as a target system (the analogue of
//!   the paper's Lustre adapter);
//! * [`system::CapesSystem`] — Monitoring Agents + Interface Daemon + Replay
//!   DB + DRL engine wired around a target system (Figure 1);
//! * [`session`] — training / tuning / baseline session runners used by every
//!   experiment;
//! * [`tuners`] — comparator tuners (static defaults, random search, hill
//!   climbing) representing the search-based prior work discussed in §5.
//!
//! ## Quick start
//!
//! ```
//! use capes::prelude::*;
//!
//! // A small simulated cluster running the paper's write-heavy workload.
//! let target = SimulatedLustre::builder()
//!     .workload(Workload::random_rw(0.1))
//!     .seed(7)
//!     .build();
//!
//! // Scale the paper's hyperparameters down so this doc-test runs quickly.
//! let hp = Hyperparameters::quick_test();
//! let mut system = CapesSystem::new(target, hp, 7);
//!
//! // A (very) short training session followed by a tuned measurement.
//! let training = run_training_session(&mut system, 60);
//! assert!(training.mean_throughput() > 0.0);
//! ```

pub mod adapter;
pub mod hyperparams;
pub mod objective;
pub mod session;
pub mod system;
pub mod target;
pub mod tuners;

pub use adapter::SimulatedLustre;
pub use hyperparams::Hyperparameters;
pub use objective::Objective;
pub use session::{run_baseline_session, run_training_session, run_tuning_session, SessionResult};
pub use system::CapesSystem;
pub use target::{TargetSystem, TargetTick, TunableSpec};

/// Convenient glob import for examples and benchmarks.
pub mod prelude {
    pub use crate::adapter::SimulatedLustre;
    pub use crate::hyperparams::Hyperparameters;
    pub use crate::objective::Objective;
    pub use crate::session::{
        run_baseline_session, run_training_session, run_tuning_session, SessionResult,
    };
    pub use crate::system::CapesSystem;
    pub use crate::target::{TargetSystem, TargetTick, TunableSpec};
    pub use crate::tuners::{HillClimbing, RandomSearch, StaticBaseline, Tuner};
    pub use capes_simstore::{ClusterConfig, PiMode, TunableParams, Workload};
}
