//! # capes
//!
//! CAPES — Computer Automated Performance Enhancement System — is an
//! unsupervised, model-less parameter-tuning system driven by deep
//! reinforcement learning, reproduced from the SC '17 paper by Li et al.
//!
//! This crate is the orchestration layer that ties the substrates together:
//!
//! * [`target::TargetSystem`] — the adapter interface of the paper's
//!   Appendix A: anything that can report per-node performance indicators and
//!   accept parameter values can be tuned;
//! * [`builder::Capes`] — the fallible builder assembling a deployment
//!   (objective, Action Checker, tuning engine, observers all optional);
//! * [`error::CapesError`] — typed errors instead of assembly-time panics;
//! * [`hyperparams::Hyperparameters`] — every hyperparameter of Table 1 with
//!   the paper's values as defaults;
//! * [`objective`] — single- and multi-objective reward functions (§3.2);
//! * [`adapter::SimulatedLustre`] — the bundled adapter that binds the
//!   [`capes_simstore`] cluster simulator as a target system (the analogue of
//!   the paper's Lustre adapter);
//! * [`system::CapesSystem`] — Monitoring Agents + Interface Daemon + Replay
//!   DB + a pluggable tuning engine wired around a target system (Figure 1);
//! * [`engine::TuningEngine`] — the unified engine interface implemented by
//!   the DQN engine and the search comparators;
//! * [`experiment::Experiment`] — declarative baseline/train/tuned phase
//!   plans producing JSON-serializable [`experiment::ExperimentReport`]s,
//!   with [`experiment::TickObserver`] streaming per-tick telemetry;
//! * [`tuners`] — comparator tuners (static defaults, random search, hill
//!   climbing) representing the search-based prior work discussed in §5.
//!
//! ## Quick start
//!
//! ```
//! use capes::prelude::*;
//!
//! // A small simulated cluster running the paper's write-heavy workload.
//! let target = SimulatedLustre::builder()
//!     .workload(Workload::random_rw(0.1))
//!     .seed(7)
//!     .build();
//!
//! // Assemble CAPES around it. `quick_test()` scales the paper's
//! // hyperparameters down so this doc-test runs quickly; invalid
//! // configurations come back as typed errors instead of panics.
//! let system = Capes::builder(target)
//!     .hyperparams(Hyperparameters::quick_test())
//!     .seed(7)
//!     .build()
//!     .expect("valid configuration");
//!
//! // The paper's evaluation workflow as a declarative plan: measure the
//! // baseline, train (very briefly, for the doc-test), measure tuned.
//! let report = Experiment::new(system)
//!     .phase(Phase::Baseline { ticks: 30 })
//!     .phase(Phase::Train { ticks: 60 })
//!     .phase(Phase::Tuned { ticks: 30, label: "tuned".into() })
//!     .run();
//!
//! assert_eq!(report.sessions.len(), 3);
//! assert!(report.baseline().unwrap().mean_throughput() > 0.0);
//! assert!(report.improvement_over_baseline("tuned").is_some());
//! // Reports serialize to JSON for the figure binaries.
//! let json = report.to_json();
//! assert!(ExperimentReport::from_json(&json).is_ok());
//! ```

#![forbid(unsafe_code)]

pub mod adapter;
pub mod builder;
pub mod engine;
pub mod error;
pub mod experiment;
pub mod hyperparams;
pub mod knobs;
pub mod objective;
pub mod session;
pub mod system;
pub mod target;
pub mod tuners;

pub use adapter::SimulatedLustre;
pub use builder::{Capes, CapesBuilder};
pub use engine::{
    step_params, DrlEngine, EngineContext, NullEngine, ProposedAction, SearchEngine, TuningEngine,
};
pub use error::CapesError;
pub use experiment::{Experiment, ExperimentReport, Phase, PhaseKind, TickObserver};
pub use hyperparams::Hyperparameters;
pub use objective::Objective;
pub use session::SessionResult;
#[allow(deprecated)]
pub use session::{run_baseline_session, run_training_session, run_tuning_session};
pub use system::{CapesSystem, SystemTick, TickMeasurement, Transport};
pub use target::{TargetSystem, TargetTick, TunableSpec};

// Replay-layer types that surface through the builder API (`replay_db`,
// `sampling_scope`): re-exported so downstream crates need not depend on
// capes-drl / capes-replay directly to configure experience sharing.
pub use capes_drl::SamplingScope;
pub use capes_replay::{ReplayArena, SharedReplayDb, StripeStats};

/// Convenient glob import for examples, benchmarks and downstream crates.
///
/// Brings in the builder-first construction API ([`Capes`],
/// [`CapesBuilder`], [`CapesError`]), the declarative experiment API
/// ([`Experiment`], [`Phase`], [`PhaseKind`], [`ExperimentReport`],
/// [`TickObserver`]), the unified engine interface ([`TuningEngine`],
/// [`DrlEngine`], [`SearchEngine`]), the comparator tuners, the bundled
/// simulator adapter, and the simulator's configuration types.
pub mod prelude {
    pub use crate::adapter::SimulatedLustre;
    pub use crate::builder::{Capes, CapesBuilder};
    pub use crate::engine::{DrlEngine, NullEngine, SearchEngine, TuningEngine};
    pub use crate::error::CapesError;
    pub use crate::experiment::{Experiment, ExperimentReport, Phase, PhaseKind, TickObserver};
    pub use crate::hyperparams::Hyperparameters;
    pub use crate::objective::Objective;
    pub use crate::session::SessionResult;
    #[allow(deprecated)]
    pub use crate::session::{run_baseline_session, run_training_session, run_tuning_session};
    pub use crate::system::{CapesSystem, SystemTick, TickMeasurement, Transport};
    pub use crate::target::{TargetSystem, TargetTick, TunableSpec};
    pub use crate::tuners::{HillClimbing, RandomSearch, StaticBaseline, Tuner, TunerResult};
    pub use capes_drl::SamplingScope;
    pub use capes_replay::{ReplayArena, SharedReplayDb};
    pub use capes_simstore::{ClusterConfig, PiMode, TunableParams, Workload};
}
