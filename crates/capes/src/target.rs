//! The target-system adapter interface (paper Appendix A.2: "It can be used
//! to tune virtually any parameters as long as an adapter function is provided
//! for collecting the observation from the target system and for setting the
//! parameters to the target system").

use serde::{Deserialize, Serialize};

/// Description of one tunable parameter exposed by a target system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TunableSpec {
    /// Human-readable parameter name.
    pub name: String,
    /// Smallest allowed value.
    pub min: f64,
    /// Largest allowed value.
    pub max: f64,
    /// Amount one tuning action adds or subtracts.
    pub step: f64,
    /// The untuned default value.
    pub default: f64,
}

impl TunableSpec {
    /// Clamps `value` into the valid range.
    pub fn clamp(&self, value: f64) -> f64 {
        value.clamp(self.min, self.max)
    }
}

/// Everything the target system reports for one sampling tick.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetTick {
    /// Per-node performance-indicator vectors (already normalised for the
    /// DNN; all nodes must report the same number of indicators).
    pub per_node_pis: Vec<Vec<f64>>,
    /// Aggregate throughput achieved during the tick, MB/s.
    pub throughput_mbps: f64,
    /// Mean request latency during the tick, ms.
    pub latency_ms: f64,
}

impl TargetTick {
    /// Number of reporting nodes.
    pub fn num_nodes(&self) -> usize {
        self.per_node_pis.len()
    }
}

/// A system CAPES can tune: it reports per-node performance indicators once a
/// second and accepts new values for its tunable parameters at any time.
pub trait TargetSystem {
    /// Number of monitored nodes (each runs a Monitoring Agent).
    fn num_nodes(&self) -> usize;

    /// Number of performance indicators each node reports per tick.
    fn pis_per_node(&self) -> usize;

    /// The tunable parameters and their ranges.
    fn tunable_specs(&self) -> Vec<TunableSpec>;

    /// Current values of the tunable parameters (same order as
    /// [`TargetSystem::tunable_specs`]).
    fn current_params(&self) -> Vec<f64>;

    /// Applies new parameter values (same order as the specs). Implementations
    /// should clamp out-of-range values rather than fail.
    fn apply_params(&mut self, values: &[f64]);

    /// Advances the system by one second of (possibly simulated) time and
    /// reports what happened.
    fn step(&mut self) -> TargetTick;

    /// Human-readable description of the system (used in logs and reports).
    fn describe(&self) -> String {
        format!(
            "{} nodes, {} PIs/node, {} tunable parameters",
            self.num_nodes(),
            self.pis_per_node(),
            self.tunable_specs().len()
        )
    }
}

#[cfg(test)]
pub(crate) mod test_target {
    use super::*;

    /// A deliberately simple synthetic target used by unit tests: throughput
    /// is a concave function of a single parameter, peaking away from the
    /// default, with additive noise.
    pub struct QuadraticTarget {
        pub value: f64,
        pub optimum: f64,
        pub noise: f64,
        pub rng_state: u64,
    }

    impl QuadraticTarget {
        pub fn new(optimum: f64) -> Self {
            QuadraticTarget {
                value: 10.0,
                optimum,
                noise: 0.5,
                rng_state: 1,
            }
        }

        fn next_noise(&mut self) -> f64 {
            // Small xorshift so the test target needs no external RNG.
            self.rng_state ^= self.rng_state << 13;
            self.rng_state ^= self.rng_state >> 7;
            self.rng_state ^= self.rng_state << 17;
            ((self.rng_state % 1000) as f64 / 1000.0 - 0.5) * 2.0 * self.noise
        }
    }

    impl TargetSystem for QuadraticTarget {
        fn num_nodes(&self) -> usize {
            1
        }

        fn pis_per_node(&self) -> usize {
            2
        }

        fn tunable_specs(&self) -> Vec<TunableSpec> {
            vec![TunableSpec {
                name: "knob".into(),
                min: 0.0,
                max: 100.0,
                step: 2.0,
                default: 10.0,
            }]
        }

        fn current_params(&self) -> Vec<f64> {
            vec![self.value]
        }

        fn apply_params(&mut self, values: &[f64]) {
            self.value = values[0].clamp(0.0, 100.0);
        }

        fn step(&mut self) -> TargetTick {
            let d = self.value - self.optimum;
            let throughput = (100.0 - 0.05 * d * d + self.next_noise()).max(1.0);
            TargetTick {
                per_node_pis: vec![vec![self.value / 100.0, throughput / 100.0]],
                throughput_mbps: throughput,
                latency_ms: 10.0 + 0.02 * d * d,
            }
        }
    }

    impl capes_persist::Persist for QuadraticTarget {
        const MIN_SIZE: usize = 3 * 8 + 8;

        fn encode(&self, w: &mut capes_persist::Writer) {
            w.put_f64(self.value);
            w.put_f64(self.optimum);
            w.put_f64(self.noise);
            w.put_u64(self.rng_state);
        }

        fn decode(r: &mut capes_persist::Reader<'_>) -> Result<Self, capes_persist::PersistError> {
            let value = r.get_f64()?;
            let optimum = r.get_f64()?;
            let noise = r.get_f64()?;
            let rng_state = r.get_u64()?;
            if rng_state == 0 {
                // xorshift sticks at zero forever.
                return Err(capes_persist::PersistError::BadValue {
                    what: "all-zero test-target RNG state",
                });
            }
            Ok(QuadraticTarget {
                value,
                optimum,
                noise,
                rng_state,
            })
        }
    }

    #[test]
    fn quadratic_target_peaks_at_its_optimum() {
        let mut t = QuadraticTarget::new(60.0);
        t.apply_params(&[60.0]);
        let at_optimum = t.step().throughput_mbps;
        t.apply_params(&[10.0]);
        let at_default = t.step().throughput_mbps;
        assert!(at_optimum > at_default + 50.0);
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.pis_per_node(), 2);
        assert!(t.describe().contains("1 nodes"));
    }

    #[test]
    fn spec_clamp_works() {
        let spec = TunableSpec {
            name: "x".into(),
            min: 1.0,
            max: 5.0,
            step: 1.0,
            default: 2.0,
        };
        assert_eq!(spec.clamp(0.0), 1.0);
        assert_eq!(spec.clamp(9.0), 5.0);
        assert_eq!(spec.clamp(3.0), 3.0);
    }

    #[test]
    fn target_tick_counts_nodes() {
        let tick = TargetTick {
            per_node_pis: vec![vec![1.0], vec![2.0]],
            throughput_mbps: 5.0,
            latency_ms: 1.0,
        };
        assert_eq!(tick.num_nodes(), 2);
    }
}
