//! Central registry of every `CAPES_*` environment knob.
//!
//! `capes-check` (rule `env-registry`) requires each `CAPES_*` string
//! literal in non-test code to appear as a string literal in this module,
//! so the tuning surface the process reads from its environment is
//! documented in exactly one place.

/// `1/on/true` forces the SIMD GEMM kernels on; `0/off/false` forces the
/// scalar fallback. Unset: runtime AVX2+FMA detection decides.
pub const ENV_SIMD: &str = "CAPES_SIMD";

/// Worker-thread count for the GEMM worker pool. Unset or `0`: derived from
/// available parallelism.
pub const ENV_THREADS: &str = "CAPES_THREADS";

/// Shard-worker count for the fleet daemon's tick pool. Unset or `0`:
/// derived from available parallelism.
pub const ENV_FLEET_THREADS: &str = "CAPES_FLEET_THREADS";

/// `1/on/true` enables span journaling (tracing) in `capes-telemetry`.
pub const ENV_TRACE: &str = "CAPES_TRACE";

/// `1/on/true` runs the full-length experiment schedules instead of the CI
/// quick profile.
pub const ENV_FULL: &str = "CAPES_FULL";

/// Connection count used by the net soak/integration harness.
pub const ENV_NET_CONNS: &str = "CAPES_NET_CONNS";

/// Training-phase tick count override for the single-system examples.
pub const ENV_TRAIN_TICKS: &str = "CAPES_TRAIN_TICKS";

/// Measurement-phase tick count override for the single-system examples.
pub const ENV_MEASURE_TICKS: &str = "CAPES_MEASURE_TICKS";

/// Per-phase tick count override for the dynamic-workload example.
pub const ENV_PHASE_TICKS: &str = "CAPES_PHASE_TICKS";

/// Training-phase tick count override for the fleet examples.
pub const ENV_FLEET_TRAIN_TICKS: &str = "CAPES_FLEET_TRAIN_TICKS";

/// Measurement-phase tick count override for the fleet examples.
pub const ENV_FLEET_MEASURE_TICKS: &str = "CAPES_FLEET_MEASURE_TICKS";

/// Simulated fleet size override for the fleet examples.
pub const ENV_FLEET_WORKERS: &str = "CAPES_FLEET_WORKERS";
