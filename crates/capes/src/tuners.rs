//! Comparator tuners.
//!
//! The paper's related-work discussion (§5) groups prior automatic tuning
//! systems into model-based feedback controllers and model-less *search*
//! methods (hill climbing, evolutionary strategies) that sweep parameter
//! values against a repeatable workload. Its future work explicitly asks for a
//! comparison of CAPES against "the best results from other automatic tuning
//! methods". These tuners implement that comparison:
//!
//! * [`StaticBaseline`] — keep the defaults (the paper's baseline);
//! * [`RandomSearch`] — sample uniformly random parameter vectors and keep the
//!   best;
//! * [`HillClimbing`] — greedy coordinate steps from the defaults, the classic
//!   one-time search approach.
//!
//! Each comparator is a [`SearchStrategy`]: wrapped in
//! [`crate::engine::SearchEngine`] it implements the same
//! [`crate::engine::TuningEngine`] interface as the DRL engine, so the
//! benchmark harness drives CAPES and all three comparators through one code
//! path. The legacy [`Tuner`] trait remains for one-shot batch tuning against
//! a bare target and is itself implemented on top of the engine interface —
//! exactly the "tweak-benchmark cycle" the paper argues is too slow, which
//! the benchmark harness quantifies.

use crate::engine::{run_search, SearchEngine, SearchStrategy};
use crate::target::{TargetSystem, TunableSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Result of a tuner run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TunerResult {
    /// Best parameter vector found.
    pub best_params: Vec<f64>,
    /// Mean throughput measured with those parameters, MB/s.
    pub best_throughput: f64,
    /// Number of candidate configurations evaluated.
    pub evaluations: usize,
    /// Total target-system ticks consumed (the tuning cost).
    pub ticks_used: u64,
}

/// A parameter tuner that can be compared against CAPES with a one-shot
/// batch run against a bare target system.
pub trait Tuner {
    /// Runs the tuner against `target`, evaluating each candidate for
    /// `eval_ticks` seconds, and returns the best configuration found.
    fn tune<T: TargetSystem>(&mut self, target: &mut T, eval_ticks: u64) -> TunerResult;

    /// Human-readable name used in benchmark output.
    fn name(&self) -> &'static str;
}

/// Keeps the default parameter values (the untuned baseline of every figure).
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticBaseline;

impl SearchStrategy for StaticBaseline {
    fn name(&self) -> &'static str {
        "static defaults"
    }

    fn next_candidate(
        &mut self,
        _specs: &[TunableSpec],
        _last: &[f64],
        _last_score: f64,
        _best: (&[f64], f64),
        _evaluations: usize,
    ) -> Option<Vec<f64>> {
        // One evaluation of the defaults, then done.
        None
    }
}

impl Tuner for StaticBaseline {
    fn tune<T: TargetSystem>(&mut self, target: &mut T, eval_ticks: u64) -> TunerResult {
        let mut engine = SearchEngine::new(*self, eval_ticks);
        run_search(&mut engine, target, eval_ticks)
    }

    fn name(&self) -> &'static str {
        SearchStrategy::name(self)
    }
}

/// Uniform random search over the parameter space.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    /// Number of random candidates to evaluate (on top of the defaults).
    pub candidates: usize,
    rng: StdRng,
}

impl RandomSearch {
    /// Creates a random search evaluating `candidates` configurations.
    ///
    /// # Panics
    /// Panics if `candidates` is zero.
    pub fn new(candidates: usize, seed: u64) -> Self {
        assert!(candidates > 0);
        RandomSearch {
            candidates,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn random_params(&mut self, specs: &[TunableSpec]) -> Vec<f64> {
        specs
            .iter()
            .map(|s| {
                let steps = ((s.max - s.min) / s.step).round() as u64;
                let k = self.rng.gen_range(0..=steps);
                s.clamp(s.min + k as f64 * s.step)
            })
            .collect()
    }
}

impl SearchStrategy for RandomSearch {
    fn name(&self) -> &'static str {
        "random search"
    }

    fn next_candidate(
        &mut self,
        specs: &[TunableSpec],
        _last: &[f64],
        _last_score: f64,
        _best: (&[f64], f64),
        evaluations: usize,
    ) -> Option<Vec<f64>> {
        // The first evaluation was the defaults; then `candidates` randoms.
        if evaluations <= self.candidates {
            Some(self.random_params(specs))
        } else {
            None
        }
    }
}

impl Tuner for RandomSearch {
    fn tune<T: TargetSystem>(&mut self, target: &mut T, eval_ticks: u64) -> TunerResult {
        let mut engine = SearchEngine::new(self.clone(), eval_ticks);
        let budget = (self.candidates as u64 + 1) * eval_ticks;
        let result = run_search(&mut engine, target, budget);
        // Carry the advanced RNG state back, so repeated `tune` calls on one
        // RandomSearch draw fresh candidate sequences.
        self.rng = engine.strategy().rng.clone();
        result
    }

    fn name(&self) -> &'static str {
        "random search"
    }
}

/// Greedy coordinate hill climbing from the defaults: repeatedly tries ± one
/// step on each parameter and moves to the best neighbour until no neighbour
/// improves or the evaluation budget is spent.
#[derive(Debug, Clone)]
pub struct HillClimbing {
    /// Maximum number of candidate evaluations.
    pub max_evaluations: usize,
    position: Option<HillPosition>,
}

#[derive(Debug, Clone)]
struct HillPosition {
    current: Vec<f64>,
    current_score: f64,
    queue: Vec<Vec<f64>>,
    round_best: Option<(Vec<f64>, f64)>,
}

impl HillClimbing {
    /// Creates a hill climber with the given evaluation budget.
    ///
    /// # Panics
    /// Panics if `max_evaluations` is zero.
    pub fn new(max_evaluations: usize) -> Self {
        assert!(max_evaluations > 0);
        HillClimbing {
            max_evaluations,
            position: None,
        }
    }

    /// Neighbours of `current` (± one step per parameter), in coordinate
    /// order, most-recently-generated last so `Vec::pop` walks them in order.
    fn neighbours(specs: &[TunableSpec], current: &[f64]) -> Vec<Vec<f64>> {
        let mut queue = Vec::new();
        for (i, spec) in specs.iter().enumerate() {
            for direction in [-1.0, 1.0] {
                let mut candidate = current.to_vec();
                candidate[i] = spec.clamp(candidate[i] + direction * spec.step);
                if candidate != current {
                    queue.push(candidate);
                }
            }
        }
        queue.reverse();
        queue
    }
}

impl SearchStrategy for HillClimbing {
    fn name(&self) -> &'static str {
        "hill climbing"
    }

    fn next_candidate(
        &mut self,
        specs: &[TunableSpec],
        last: &[f64],
        last_score: f64,
        _best: (&[f64], f64),
        evaluations: usize,
    ) -> Option<Vec<f64>> {
        let position = match &mut self.position {
            None => {
                // `last` was the starting position (the defaults).
                self.position = Some(HillPosition {
                    current: last.to_vec(),
                    current_score: last_score,
                    queue: Self::neighbours(specs, last),
                    round_best: None,
                });
                self.position.as_mut().expect("just set")
            }
            Some(position) => {
                // `last` was a neighbour; track the best of this round.
                let improves_round = position
                    .round_best
                    .as_ref()
                    .map(|(_, s)| last_score > *s)
                    .unwrap_or(true);
                if improves_round {
                    position.round_best = Some((last.to_vec(), last_score));
                }
                position
            }
        };

        loop {
            if evaluations >= self.max_evaluations {
                // Budget spent: stop proposing. The engine's global best
                // already covers any improving neighbour from the truncated
                // round, so the outcome matches the batch algorithm's
                // "move, then break".
                return None;
            }
            if let Some(candidate) = position.queue.pop() {
                return Some(candidate);
            }
            // Round complete: move or converge.
            match position.round_best.take() {
                Some((params, score)) if score > position.current_score => {
                    position.current = params;
                    position.current_score = score;
                    position.queue = Self::neighbours(specs, &position.current);
                    if position.queue.is_empty() {
                        return None;
                    }
                }
                _ => return None,
            }
        }
    }
}

impl Tuner for HillClimbing {
    fn tune<T: TargetSystem>(&mut self, target: &mut T, eval_ticks: u64) -> TunerResult {
        // A fresh strategy per run: the search state is not reusable.
        let strategy = HillClimbing::new(self.max_evaluations);
        let mut engine = SearchEngine::new(strategy, eval_ticks);
        let budget = self.max_evaluations as u64 * eval_ticks;
        run_search(&mut engine, target, budget)
    }

    fn name(&self) -> &'static str {
        "hill climbing"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::test_target::QuadraticTarget;

    #[test]
    fn static_baseline_keeps_defaults() {
        let mut target = QuadraticTarget::new(60.0);
        let result = StaticBaseline.tune(&mut target, 20);
        assert_eq!(result.best_params, vec![10.0]);
        assert_eq!(result.evaluations, 1);
        assert_eq!(Tuner::name(&StaticBaseline), "static defaults");
    }

    #[test]
    fn random_search_beats_the_baseline_on_an_easy_surface() {
        let mut target = QuadraticTarget::new(60.0);
        let baseline = StaticBaseline.tune(&mut target, 20).best_throughput;
        let mut search = RandomSearch::new(40, 7);
        let result = search.tune(&mut target, 20);
        assert!(result.best_throughput > baseline);
        assert_eq!(result.evaluations, 41);
        assert!(result.ticks_used >= 41 * 20);
        assert!(
            (result.best_params[0] - 60.0).abs() < 30.0,
            "best value {} should be near the optimum",
            result.best_params[0]
        );
    }

    #[test]
    fn hill_climbing_walks_toward_the_optimum() {
        let mut target = QuadraticTarget::new(40.0);
        let mut climber = HillClimbing::new(200);
        let result = climber.tune(&mut target, 20);
        assert!(
            result.best_params[0] > 25.0,
            "hill climbing stopped too early at {}",
            result.best_params[0]
        );
        assert!(result.evaluations <= 200);
        assert_eq!(Tuner::name(&climber), "hill climbing");
        // The target is left configured with the tuned value.
        assert_eq!(target.current_params(), result.best_params);
    }

    #[test]
    fn hill_climbing_respects_its_budget() {
        let mut target = QuadraticTarget::new(90.0);
        let mut climber = HillClimbing::new(5);
        let result = climber.tune(&mut target, 5);
        assert!(result.evaluations <= 5);
    }

    #[test]
    fn tuner_and_engine_paths_agree() {
        // The batch Tuner API and the TuningEngine API are the same
        // implementation; a hill climb through either must land on the same
        // configuration for the same (deterministic) target.
        let mut batch_target = QuadraticTarget::new(40.0);
        let batch = HillClimbing::new(60).tune(&mut batch_target, 15);

        let mut engine = SearchEngine::new(HillClimbing::new(60), 15);
        let mut engine_target = QuadraticTarget::new(40.0);
        let engine_result = run_search(&mut engine, &mut engine_target, 60 * 15);
        assert_eq!(batch.best_params, engine_result.best_params);
        assert_eq!(batch.evaluations, engine_result.evaluations);
    }
}
