//! Comparator tuners.
//!
//! The paper's related-work discussion (§5) groups prior automatic tuning
//! systems into model-based feedback controllers and model-less *search*
//! methods (hill climbing, evolutionary strategies) that sweep parameter
//! values against a repeatable workload. Its future work explicitly asks for a
//! comparison of CAPES against "the best results from other automatic tuning
//! methods". These tuners implement that comparison on the same
//! [`TargetSystem`] interface CAPES uses:
//!
//! * [`StaticBaseline`] — keep the defaults (the paper's baseline);
//! * [`RandomSearch`] — sample uniformly random parameter vectors and keep the
//!   best;
//! * [`HillClimbing`] — greedy coordinate steps from the defaults, the classic
//!   one-time search approach.
//!
//! All of them evaluate a candidate by running the target for a fixed number
//! of ticks and averaging throughput — exactly the "tweak-benchmark cycle" the
//! paper argues is too slow, which the benchmark harness quantifies.

use crate::target::{TargetSystem, TunableSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Result of a tuner run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TunerResult {
    /// Best parameter vector found.
    pub best_params: Vec<f64>,
    /// Mean throughput measured with those parameters, MB/s.
    pub best_throughput: f64,
    /// Number of candidate configurations evaluated.
    pub evaluations: usize,
    /// Total target-system ticks consumed (the tuning cost).
    pub ticks_used: u64,
}

/// A parameter tuner that can be compared against CAPES.
pub trait Tuner {
    /// Runs the tuner against `target`, evaluating each candidate for
    /// `eval_ticks` seconds, and returns the best configuration found.
    fn tune<T: TargetSystem>(&mut self, target: &mut T, eval_ticks: u64) -> TunerResult;

    /// Human-readable name used in benchmark output.
    fn name(&self) -> &'static str;
}

fn evaluate<T: TargetSystem>(target: &mut T, params: &[f64], eval_ticks: u64) -> f64 {
    target.apply_params(params);
    let mut sum = 0.0;
    for _ in 0..eval_ticks {
        sum += target.step().throughput_mbps;
    }
    sum / eval_ticks.max(1) as f64
}

/// Keeps the default parameter values (the untuned baseline of every figure).
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticBaseline;

impl Tuner for StaticBaseline {
    fn tune<T: TargetSystem>(&mut self, target: &mut T, eval_ticks: u64) -> TunerResult {
        let defaults: Vec<f64> = target.tunable_specs().iter().map(|s| s.default).collect();
        let throughput = evaluate(target, &defaults, eval_ticks);
        TunerResult {
            best_params: defaults,
            best_throughput: throughput,
            evaluations: 1,
            ticks_used: eval_ticks,
        }
    }

    fn name(&self) -> &'static str {
        "static defaults"
    }
}

/// Uniform random search over the parameter space.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    /// Number of random candidates to evaluate.
    pub candidates: usize,
    rng: StdRng,
}

impl RandomSearch {
    /// Creates a random search evaluating `candidates` configurations.
    pub fn new(candidates: usize, seed: u64) -> Self {
        assert!(candidates > 0);
        RandomSearch {
            candidates,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn random_params(&mut self, specs: &[TunableSpec]) -> Vec<f64> {
        specs
            .iter()
            .map(|s| {
                let steps = ((s.max - s.min) / s.step).round() as u64;
                let k = self.rng.gen_range(0..=steps);
                s.clamp(s.min + k as f64 * s.step)
            })
            .collect()
    }
}

impl Tuner for RandomSearch {
    fn tune<T: TargetSystem>(&mut self, target: &mut T, eval_ticks: u64) -> TunerResult {
        let specs = target.tunable_specs();
        let defaults: Vec<f64> = specs.iter().map(|s| s.default).collect();
        let mut best_params = defaults.clone();
        let mut best_throughput = evaluate(target, &defaults, eval_ticks);
        let mut ticks = eval_ticks;
        for _ in 0..self.candidates {
            let candidate = self.random_params(&specs);
            let throughput = evaluate(target, &candidate, eval_ticks);
            ticks += eval_ticks;
            if throughput > best_throughput {
                best_throughput = throughput;
                best_params = candidate;
            }
        }
        TunerResult {
            best_params,
            best_throughput,
            evaluations: self.candidates + 1,
            ticks_used: ticks,
        }
    }

    fn name(&self) -> &'static str {
        "random search"
    }
}

/// Greedy coordinate hill climbing from the defaults: repeatedly tries ± one
/// step on each parameter and moves to the best neighbour until no neighbour
/// improves or the evaluation budget is spent.
#[derive(Debug, Clone)]
pub struct HillClimbing {
    /// Maximum number of candidate evaluations.
    pub max_evaluations: usize,
}

impl HillClimbing {
    /// Creates a hill climber with the given evaluation budget.
    pub fn new(max_evaluations: usize) -> Self {
        assert!(max_evaluations > 0);
        HillClimbing { max_evaluations }
    }
}

impl Tuner for HillClimbing {
    fn tune<T: TargetSystem>(&mut self, target: &mut T, eval_ticks: u64) -> TunerResult {
        let specs = target.tunable_specs();
        let mut current: Vec<f64> = specs.iter().map(|s| s.default).collect();
        let mut current_score = evaluate(target, &current, eval_ticks);
        let mut evaluations = 1usize;
        let mut ticks = eval_ticks;

        loop {
            let mut best_neighbour: Option<(Vec<f64>, f64)> = None;
            for (i, spec) in specs.iter().enumerate() {
                for direction in [-1.0, 1.0] {
                    if evaluations >= self.max_evaluations {
                        break;
                    }
                    let mut candidate = current.clone();
                    candidate[i] = spec.clamp(candidate[i] + direction * spec.step);
                    if candidate == current {
                        continue;
                    }
                    let score = evaluate(target, &candidate, eval_ticks);
                    evaluations += 1;
                    ticks += eval_ticks;
                    if best_neighbour
                        .as_ref()
                        .map(|(_, s)| score > *s)
                        .unwrap_or(true)
                    {
                        best_neighbour = Some((candidate, score));
                    }
                }
            }
            match best_neighbour {
                Some((params, score)) if score > current_score => {
                    current = params;
                    current_score = score;
                }
                _ => break,
            }
            if evaluations >= self.max_evaluations {
                break;
            }
        }
        // Leave the target configured with the best parameters found.
        target.apply_params(&current);
        TunerResult {
            best_params: current,
            best_throughput: current_score,
            evaluations,
            ticks_used: ticks,
        }
    }

    fn name(&self) -> &'static str {
        "hill climbing"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::test_target::QuadraticTarget;

    #[test]
    fn static_baseline_keeps_defaults() {
        let mut target = QuadraticTarget::new(60.0);
        let result = StaticBaseline.tune(&mut target, 20);
        assert_eq!(result.best_params, vec![10.0]);
        assert_eq!(result.evaluations, 1);
        assert_eq!(StaticBaseline.name(), "static defaults");
    }

    #[test]
    fn random_search_beats_the_baseline_on_an_easy_surface() {
        let mut target = QuadraticTarget::new(60.0);
        let baseline = StaticBaseline.tune(&mut target, 20).best_throughput;
        let mut search = RandomSearch::new(40, 7);
        let result = search.tune(&mut target, 20);
        assert!(result.best_throughput > baseline);
        assert_eq!(result.evaluations, 41);
        assert!(result.ticks_used >= 41 * 20);
        assert!(
            (result.best_params[0] - 60.0).abs() < 30.0,
            "best value {} should be near the optimum",
            result.best_params[0]
        );
    }

    #[test]
    fn hill_climbing_walks_toward_the_optimum() {
        let mut target = QuadraticTarget::new(40.0);
        let mut climber = HillClimbing::new(200);
        let result = climber.tune(&mut target, 20);
        assert!(
            result.best_params[0] > 25.0,
            "hill climbing stopped too early at {}",
            result.best_params[0]
        );
        assert!(result.evaluations <= 200);
        assert_eq!(climber.name(), "hill climbing");
        // The target is left configured with the tuned value.
        assert_eq!(target.current_params(), result.best_params);
    }

    #[test]
    fn hill_climbing_respects_its_budget() {
        let mut target = QuadraticTarget::new(90.0);
        let mut climber = HillClimbing::new(5);
        let result = climber.tune(&mut target, 5);
        assert!(result.evaluations <= 5);
    }
}
