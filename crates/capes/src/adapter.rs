//! The bundled adapter: the simulated Lustre-like cluster as a
//! [`TargetSystem`]. This plays the role of the paper's Lustre adapter
//! (`conf.py` collector/controller functions, Appendix A.3.3).

use crate::target::{TargetSystem, TargetTick, TunableSpec};
use capes_simstore::{Cluster, ClusterConfig, TunableParams, Workload};

/// Builder for [`SimulatedLustre`].
#[derive(Debug, Clone)]
pub struct SimulatedLustreBuilder {
    config: ClusterConfig,
    workload: Workload,
    seed: u64,
}

impl SimulatedLustreBuilder {
    /// Overrides the cluster configuration (default: the paper's testbed
    /// geometry with the compact PI set).
    pub fn config(mut self, config: ClusterConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the workload (default: the 1:9 read:write random workload that
    /// shows the paper's headline result).
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = workload;
        self
    }

    /// Sets the simulation RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the adapter.
    pub fn build(self) -> SimulatedLustre {
        SimulatedLustre {
            cluster: Cluster::new(self.config, self.workload, self.seed),
        }
    }
}

/// The simulated Lustre cluster wrapped as a CAPES target system.
#[derive(Debug, Clone)]
pub struct SimulatedLustre {
    cluster: Cluster,
}

impl SimulatedLustre {
    /// Starts building an adapter with default settings.
    pub fn builder() -> SimulatedLustreBuilder {
        SimulatedLustreBuilder {
            config: ClusterConfig::default(),
            workload: Workload::random_rw(0.1),
            seed: 42,
        }
    }

    /// Direct access to the underlying cluster (used by experiments that need
    /// to change the workload mid-run or perturb the session).
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// Read access to the underlying cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }
}

impl TargetSystem for SimulatedLustre {
    fn num_nodes(&self) -> usize {
        self.cluster.config().num_clients
    }

    fn pis_per_node(&self) -> usize {
        self.cluster.pis_per_client()
    }

    fn tunable_specs(&self) -> Vec<TunableSpec> {
        TunableParams::specs()
            .into_iter()
            .map(|s| TunableSpec {
                name: s.name.to_string(),
                min: s.min,
                max: s.max,
                step: s.step,
                default: s.default,
            })
            .collect()
    }

    fn current_params(&self) -> Vec<f64> {
        self.cluster.params().as_vec()
    }

    fn apply_params(&mut self, values: &[f64]) {
        self.cluster.set_params(TunableParams::from_vec(values));
    }

    fn step(&mut self) -> TargetTick {
        let stats = self.cluster.step();
        let per_node_pis = (0..self.num_nodes())
            .map(|n| self.cluster.normalized_indicators(n))
            .collect();
        TargetTick {
            per_node_pis,
            throughput_mbps: stats.aggregate_throughput(),
            latency_ms: stats.mean_latency_ms,
        }
    }

    fn describe(&self) -> String {
        format!(
            "simulated Lustre: {} servers, {} clients, workload '{}'",
            self.cluster.config().num_servers,
            self.cluster.config().num_clients,
            self.cluster.workload().kind().label()
        )
    }
}

impl capes_persist::Persist for SimulatedLustre {
    const MIN_SIZE: usize = <Cluster as capes_persist::Persist>::MIN_SIZE;

    fn encode(&self, w: &mut capes_persist::Writer) {
        self.cluster.encode(w);
    }

    fn decode(r: &mut capes_persist::Reader<'_>) -> Result<Self, capes_persist::PersistError> {
        Ok(SimulatedLustre {
            cluster: Cluster::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capes_simstore::PiMode;

    #[test]
    fn adapter_exposes_paper_parameters() {
        let target = SimulatedLustre::builder().build();
        let specs = target.tunable_specs();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].name, "max_rpcs_in_flight");
        assert_eq!(specs[0].default, 8.0);
        assert_eq!(specs[1].name, "io_rate_limit");
        assert_eq!(target.current_params(), vec![8.0, 2000.0]);
        assert_eq!(target.num_nodes(), 5);
        assert!(target.describe().contains("simulated Lustre"));
    }

    #[test]
    fn step_reports_normalised_pis_for_every_node() {
        let mut target = SimulatedLustre::builder().seed(3).build();
        let tick = target.step();
        assert_eq!(tick.num_nodes(), 5);
        for node in &tick.per_node_pis {
            assert_eq!(node.len(), target.pis_per_node());
            assert!(node.iter().all(|v| v.is_finite()));
            // Normalised indicators stay in a small range.
            assert!(node.iter().all(|v| v.abs() < 20.0));
        }
        assert!(tick.throughput_mbps > 0.0);
        assert!(tick.latency_ms > 0.0);
    }

    #[test]
    fn apply_params_clamps_and_takes_effect() {
        let mut target = SimulatedLustre::builder().seed(4).build();
        target.apply_params(&[64.0, 100.0]);
        assert_eq!(target.current_params(), vec![64.0, 100.0]);
        target.apply_params(&[1e9, -5.0]);
        assert_eq!(target.current_params(), vec![256.0, 50.0]);
    }

    #[test]
    fn full_pi_mode_reports_44_indicators() {
        let config = ClusterConfig {
            pi_mode: PiMode::Full,
            ..Default::default()
        };
        let target = SimulatedLustre::builder().config(config).build();
        assert_eq!(target.pis_per_node(), 44);
    }

    #[test]
    fn workload_selection_is_respected() {
        let target = SimulatedLustre::builder()
            .workload(Workload::fileserver())
            .build();
        assert!(target.describe().contains("fileserver"));
    }
}
