//! Typed errors for the orchestration layer.
//!
//! Historically the constructors panicked on bad input
//! (`hyperparams.validate()` asserted, and an empty tunable-spec list hit an
//! `assert!`). The builder-first API surfaces those conditions as values so
//! callers embedding CAPES in larger systems can recover.
//!
//! The workspace has no crates.io access, so the `Display`/`Error` impls are
//! hand-written instead of derived with `thiserror`; the error surface is the
//! same.

use std::fmt;

/// Everything that can go wrong while assembling or driving a CAPES system.
#[derive(Debug)]
pub enum CapesError {
    /// A hyperparameter failed validation; `name` identifies the field and
    /// `reason` states the violated constraint.
    InvalidHyperparameter {
        /// Field name of the offending hyperparameter.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// The target system exposed no tunable parameters, so there is nothing
    /// to tune (the action space would be empty).
    NoTunableParameters,
    /// The target system reported a different number of nodes than it was
    /// built with (monitoring agents would mismatch).
    NodeCountMismatch {
        /// Nodes the system was assembled for.
        expected: usize,
        /// Nodes the target reported.
        actual: usize,
    },
    /// A checkpoint operation was requested on an engine that has no
    /// persistable model (e.g. the search comparators).
    EngineUnsupported {
        /// Name of the engine that rejected the operation.
        engine: String,
        /// The operation that was attempted.
        operation: &'static str,
    },
    /// A checkpoint could not be written, read or decoded.
    Checkpoint(std::io::Error),
    /// A restored checkpoint does not fit the assembled system (e.g. it was
    /// trained for a different observation width).
    CheckpointMismatch {
        /// Description of the incompatibility.
        reason: String,
    },
    /// An externally-supplied replay store (an arena stripe) was configured
    /// for a different geometry than the one the target system needs.
    ReplayConfigMismatch {
        /// Description of the mismatch (expected vs provided configuration).
        reason: String,
    },
    /// A configured replay sampling scope cannot be used with the system's
    /// arena (wrong weight count, or no positive weight).
    InvalidSamplingScope {
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for CapesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CapesError::InvalidHyperparameter { name, reason } => {
                write!(f, "invalid hyperparameter `{name}`: {reason}")
            }
            CapesError::NoTunableParameters => {
                write!(f, "target system has no tunable parameters")
            }
            CapesError::NodeCountMismatch { expected, actual } => write!(
                f,
                "target reported {actual} nodes but the system was assembled for {expected}"
            ),
            CapesError::EngineUnsupported { engine, operation } => {
                write!(f, "engine `{engine}` does not support {operation}")
            }
            CapesError::Checkpoint(e) => write!(f, "checkpoint I/O failed: {e}"),
            CapesError::CheckpointMismatch { reason } => {
                write!(f, "checkpoint incompatible with this system: {reason}")
            }
            CapesError::ReplayConfigMismatch { reason } => {
                write!(f, "replay store incompatible with this system: {reason}")
            }
            CapesError::InvalidSamplingScope { reason } => {
                write!(f, "invalid replay sampling scope: {reason}")
            }
        }
    }
}

impl std::error::Error for CapesError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CapesError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CapesError {
    fn from(e: std::io::Error) -> Self {
        CapesError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CapesError::InvalidHyperparameter {
            name: "discount_rate",
            reason: "must lie in [0, 1)".into(),
        };
        assert!(e.to_string().contains("discount_rate"));
        assert!(CapesError::NoTunableParameters
            .to_string()
            .contains("tunable"));
        let e = CapesError::NodeCountMismatch {
            expected: 5,
            actual: 3,
        };
        assert!(e.to_string().contains('5') && e.to_string().contains('3'));
        let e = CapesError::EngineUnsupported {
            engine: "random search".into(),
            operation: "checkpointing",
        };
        assert!(e.to_string().contains("random search"));
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: CapesError = io.into();
        assert!(matches!(e, CapesError::Checkpoint(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
