//! The hyperparameters of Table 1.

use crate::error::CapesError;
use capes_drl::{DqnAgentConfig, EpsilonSchedule, TrainerConfig};
use serde::{Deserialize, Serialize};

/// Every hyperparameter listed in Table 1 of the paper, plus the few knobs the
/// reproduction adds to let experiments run at laptop scale (none of which
/// change the algorithm).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Hyperparameters {
    /// "action tick length" — one action is performed every this many seconds
    /// (paper: 1).
    pub action_tick_length: u64,
    /// "sampling tick length" — one sample is taken every this many seconds
    /// (paper: 1).
    pub sampling_tick_length: u64,
    /// "sampling ticks per observation" (paper: 10).
    pub sampling_ticks_per_observation: usize,
    /// "ε initial value" (paper: 1.0).
    pub epsilon_initial: f64,
    /// "ε final value" (paper: 0.05).
    pub epsilon_final: f64,
    /// "initial exploration period" in seconds (paper: 2 h).
    pub exploration_period_ticks: u64,
    /// "discount rate (γ)" (paper: 0.99).
    pub discount_rate: f64,
    /// "minibatch size" (paper: 32).
    pub minibatch_size: usize,
    /// "missing entry tolerance" (paper: 20 %).
    pub missing_entry_tolerance: f64,
    /// "number of hidden layers" (paper: 2). The hidden layers are the same
    /// width as the input, per Table 1.
    pub num_hidden_layers: usize,
    /// "Adam learning rate" (paper: 1e-4).
    pub adam_learning_rate: f64,
    /// "target network update rate (α)" (paper: 0.01).
    pub target_update_rate: f64,
    /// Replay-database capacity in ticks (paper's evaluation accumulated 250 k
    /// one-second records).
    pub replay_capacity_ticks: usize,
    /// Scale factor applied to the objective value before it is stored as a
    /// reward. The paper feeds raw throughput (MB/s); with γ = 0.99 the
    /// Q-values then converge to ≈100× the per-second reward, which needs a
    /// long training run to reach. Scaling rewards to order one (e.g. 1/300
    /// for a cluster that peaks near 300 MB/s) makes the scaled-down runs
    /// converge in minutes without changing the optimal policy.
    pub reward_scale: f64,
    /// Training steps run per action tick. The paper's DRL engine trains
    /// continuously on a GPU; one step per simulated second reproduces the
    /// same data-to-update ratio on a CPU.
    pub train_steps_per_tick: usize,
    /// How long ε stays bumped after a scheduled workload change, in ticks.
    pub workload_change_bump_ticks: u64,
}

impl Default for Hyperparameters {
    fn default() -> Self {
        Self::paper()
    }
}

impl Hyperparameters {
    /// The exact values of Table 1.
    pub fn paper() -> Self {
        Hyperparameters {
            action_tick_length: 1,
            sampling_tick_length: 1,
            sampling_ticks_per_observation: 10,
            epsilon_initial: 1.0,
            epsilon_final: 0.05,
            exploration_period_ticks: 2 * 3600,
            discount_rate: 0.99,
            minibatch_size: 32,
            missing_entry_tolerance: 0.2,
            num_hidden_layers: 2,
            adam_learning_rate: 1e-4,
            target_update_rate: 0.01,
            replay_capacity_ticks: 250_000,
            reward_scale: 1.0,
            train_steps_per_tick: 1,
            workload_change_bump_ticks: 1800,
        }
    }

    /// A scaled-down configuration for fast experiments and CI: shorter
    /// observations, a shorter exploration period, a smaller discount rate,
    /// order-one rewards, a higher learning rate and more training steps per
    /// tick, so that a few thousand simulated seconds are enough for the
    /// policy to move.
    pub fn quick_test() -> Self {
        Hyperparameters {
            sampling_ticks_per_observation: 4,
            exploration_period_ticks: 2_000,
            discount_rate: 0.9,
            adam_learning_rate: 1e-3,
            train_steps_per_tick: 2,
            replay_capacity_ticks: 50_000,
            reward_scale: 1.0 / 300.0,
            workload_change_bump_ticks: 300,
            ..Self::paper()
        }
    }

    /// Validates the hyperparameters, reporting the first invalid value as a
    /// typed [`CapesError::InvalidHyperparameter`] so callers can recover
    /// (previously this asserted).
    pub fn validate(&self) -> Result<(), CapesError> {
        fn invalid(name: &'static str, reason: &str) -> CapesError {
            CapesError::InvalidHyperparameter {
                name,
                reason: reason.to_string(),
            }
        }
        let checks: [(&'static str, bool, &str); 16] = [
            (
                "action_tick_length",
                self.action_tick_length > 0,
                "must be positive",
            ),
            (
                "sampling_tick_length",
                self.sampling_tick_length > 0,
                "must be positive",
            ),
            (
                "sampling_ticks_per_observation",
                self.sampling_ticks_per_observation > 0,
                "must be positive",
            ),
            (
                "epsilon_initial",
                (0.0..=1.0).contains(&self.epsilon_initial),
                "must lie in [0, 1]",
            ),
            (
                "epsilon_final",
                (0.0..=1.0).contains(&self.epsilon_final),
                "must lie in [0, 1]",
            ),
            (
                "epsilon_final",
                self.epsilon_final <= self.epsilon_initial,
                "must not exceed epsilon_initial",
            ),
            (
                "exploration_period_ticks",
                self.exploration_period_ticks > 0,
                "must be positive",
            ),
            (
                "discount_rate",
                (0.0..1.0).contains(&self.discount_rate),
                "must lie in [0, 1)",
            ),
            (
                "minibatch_size",
                self.minibatch_size > 0,
                "must be positive",
            ),
            (
                "missing_entry_tolerance",
                (0.0..1.0).contains(&self.missing_entry_tolerance),
                "must lie in [0, 1)",
            ),
            (
                "num_hidden_layers",
                self.num_hidden_layers >= 1,
                "need at least one hidden layer",
            ),
            (
                "adam_learning_rate",
                self.adam_learning_rate > 0.0,
                "must be positive",
            ),
            (
                "target_update_rate",
                (0.0..=1.0).contains(&self.target_update_rate),
                "must lie in [0, 1]",
            ),
            (
                "replay_capacity_ticks",
                self.replay_capacity_ticks > self.sampling_ticks_per_observation,
                "must exceed sampling_ticks_per_observation",
            ),
            ("reward_scale", self.reward_scale > 0.0, "must be positive"),
            (
                "train_steps_per_tick",
                self.train_steps_per_tick > 0,
                "must be positive",
            ),
        ];
        for (name, ok, reason) in checks {
            if !ok {
                return Err(invalid(name, reason));
            }
        }
        Ok(())
    }

    /// Width of the flattened observation for a target with `num_nodes` nodes
    /// reporting `pis_per_node` indicators each (Table 1's "sampling ticks
    /// per observation" × nodes × PIs).
    pub fn observation_size(&self, num_nodes: usize, pis_per_node: usize) -> usize {
        self.sampling_ticks_per_observation * num_nodes * pis_per_node
    }

    /// Derives the replay-store configuration for a target with `num_nodes`
    /// nodes reporting `pis_per_node` indicators each. Single source of truth
    /// shared by [`crate::system::CapesSystem`] and external arena builders
    /// (the fleet daemon), so a pre-built arena stripe always matches what
    /// the member system would have built for itself.
    pub fn replay_config(
        &self,
        num_nodes: usize,
        pis_per_node: usize,
    ) -> capes_replay::ReplayConfig {
        capes_replay::ReplayConfig {
            num_nodes,
            pis_per_node,
            ticks_per_observation: self.sampling_ticks_per_observation,
            missing_entry_tolerance: self.missing_entry_tolerance,
            capacity_ticks: self.replay_capacity_ticks,
        }
    }

    /// Derives the DRL agent configuration for a target with the given
    /// observation width and parameter count.
    pub fn agent_config(&self, observation_size: usize, num_params: usize) -> DqnAgentConfig {
        DqnAgentConfig {
            observation_size,
            num_params,
            minibatch_size: self.minibatch_size,
            trainer: TrainerConfig {
                discount_rate: self.discount_rate,
                learning_rate: self.adam_learning_rate,
                target_update_rate: self.target_update_rate,
                gradient_clip: None,
            },
            epsilon: EpsilonSchedule::new(
                self.epsilon_initial,
                self.epsilon_final,
                self.exploration_period_ticks,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_match_table_1() {
        let hp = Hyperparameters::paper();
        hp.validate().expect("paper values are valid");
        assert_eq!(hp.action_tick_length, 1);
        assert_eq!(hp.sampling_tick_length, 1);
        assert_eq!(hp.sampling_ticks_per_observation, 10);
        assert_eq!(hp.epsilon_initial, 1.0);
        assert_eq!(hp.epsilon_final, 0.05);
        assert_eq!(hp.exploration_period_ticks, 7200);
        assert_eq!(hp.discount_rate, 0.99);
        assert_eq!(hp.minibatch_size, 32);
        assert_eq!(hp.missing_entry_tolerance, 0.2);
        assert_eq!(hp.num_hidden_layers, 2);
        assert_eq!(hp.adam_learning_rate, 1e-4);
        assert_eq!(hp.target_update_rate, 0.01);
    }

    #[test]
    fn quick_test_is_valid_and_faster() {
        let hp = Hyperparameters::quick_test();
        hp.validate().expect("quick_test values are valid");
        assert!(hp.exploration_period_ticks < Hyperparameters::paper().exploration_period_ticks);
        assert!(hp.train_steps_per_tick >= Hyperparameters::paper().train_steps_per_tick);
        assert!(hp.reward_scale < 1.0);
        // The structural hyperparameters stay at the paper values.
        assert_eq!(hp.minibatch_size, 32);
        assert_eq!(hp.target_update_rate, 0.01);
        assert_eq!(Hyperparameters::paper().reward_scale, 1.0);
    }

    #[test]
    fn agent_config_propagates_values() {
        let hp = Hyperparameters::paper();
        let cfg = hp.agent_config(2200, 2);
        assert_eq!(cfg.observation_size, 2200);
        assert_eq!(cfg.num_params, 2);
        assert_eq!(cfg.minibatch_size, 32);
        assert_eq!(cfg.trainer.discount_rate, 0.99);
        assert_eq!(cfg.trainer.learning_rate, 1e-4);
        assert_eq!(cfg.epsilon.exploration_ticks, 7200);
    }

    #[test]
    fn invalid_hyperparameters_rejected_with_typed_error() {
        let hp = Hyperparameters {
            discount_rate: 1.5,
            ..Hyperparameters::paper()
        };
        match hp.validate() {
            Err(CapesError::InvalidHyperparameter { name, reason }) => {
                assert_eq!(name, "discount_rate");
                assert!(reason.contains("[0, 1)"));
            }
            other => panic!("expected InvalidHyperparameter, got {other:?}"),
        }
        let hp = Hyperparameters {
            epsilon_final: 0.9,
            epsilon_initial: 0.5,
            ..Hyperparameters::paper()
        };
        assert!(matches!(
            hp.validate(),
            Err(CapesError::InvalidHyperparameter {
                name: "epsilon_final",
                ..
            })
        ));
    }

    #[test]
    fn observation_size_follows_table_1() {
        let hp = Hyperparameters::paper();
        // The paper's full configuration: 5 clients × 44 PIs × 10 ticks.
        assert_eq!(hp.observation_size(5, 44), 2200);
    }

    #[test]
    fn serde_round_trip() {
        let hp = Hyperparameters::paper();
        let json = serde_json::to_string(&hp).unwrap();
        let back: Hyperparameters = serde_json::from_str(&json).unwrap();
        assert_eq!(back, hp);
    }
}
