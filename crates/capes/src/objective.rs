//! Objective (reward) functions — paper §3.2.
//!
//! CAPES "uses the output of an objective function as the reward", which makes
//! multi-objective tuning a matter of choosing a different function. The
//! paper's evaluation optimises aggregate throughput; tuning throughput and
//! latency together is listed as future work and is implemented here as
//! [`Objective::Weighted`].

use crate::target::TargetTick;
use serde::{Deserialize, Serialize};

/// A reward function over one tick of target-system behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Objective {
    /// Reward = aggregate throughput in MB/s (the paper's evaluation).
    #[default]
    Throughput,
    /// Reward = −latency in ms (for latency-sensitive systems).
    NegativeLatency,
    /// Reward = `throughput_weight · throughput − latency_weight · latency`,
    /// the multi-objective combination the paper describes as future work.
    Weighted {
        /// Weight applied to throughput (MB/s).
        throughput_weight: f64,
        /// Weight applied to latency (ms), subtracted.
        latency_weight: f64,
    },
}

impl Objective {
    /// Evaluates the objective over one tick.
    pub fn evaluate(&self, tick: &TargetTick) -> f64 {
        match self {
            Objective::Throughput => tick.throughput_mbps,
            Objective::NegativeLatency => -tick.latency_ms,
            Objective::Weighted {
                throughput_weight,
                latency_weight,
            } => throughput_weight * tick.throughput_mbps - latency_weight * tick.latency_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(throughput: f64, latency: f64) -> TargetTick {
        TargetTick {
            per_node_pis: vec![vec![0.0]],
            throughput_mbps: throughput,
            latency_ms: latency,
        }
    }

    #[test]
    fn throughput_objective_is_identity_on_throughput() {
        assert_eq!(Objective::Throughput.evaluate(&tick(312.5, 9.0)), 312.5);
        assert_eq!(Objective::default(), Objective::Throughput);
    }

    #[test]
    fn latency_objective_prefers_lower_latency() {
        let fast = Objective::NegativeLatency.evaluate(&tick(100.0, 5.0));
        let slow = Objective::NegativeLatency.evaluate(&tick(100.0, 50.0));
        assert!(fast > slow);
    }

    #[test]
    fn weighted_objective_trades_off_both() {
        let obj = Objective::Weighted {
            throughput_weight: 1.0,
            latency_weight: 2.0,
        };
        let high_tp_high_lat = obj.evaluate(&tick(300.0, 100.0));
        let low_tp_low_lat = obj.evaluate(&tick(200.0, 10.0));
        assert!(low_tp_low_lat > high_tp_high_lat);
        assert_eq!(obj.evaluate(&tick(100.0, 0.0)), 100.0);
    }
}
