//! Builder-first construction of a CAPES deployment.
//!
//! Replaces the telescoping constructors (`CapesSystem::new`,
//! `CapesSystem::with_objective_and_checker`) with one fallible builder:
//!
//! ```
//! use capes::prelude::*;
//!
//! let target = SimulatedLustre::builder()
//!     .workload(Workload::random_rw(0.1))
//!     .seed(7)
//!     .build();
//! let system = Capes::builder(target)
//!     .hyperparams(Hyperparameters::quick_test())
//!     .objective(Objective::Throughput)
//!     .seed(7)
//!     .build()
//!     .expect("valid configuration");
//! assert_eq!(system.tick(), 0);
//! ```
//!
//! Invalid configurations are reported as [`CapesError`] values instead of
//! panics, and every part of the deployment — objective, Action Checker,
//! tuning engine, tick observers — is optional with the paper's evaluation
//! setup as the default.

use crate::engine::{DrlEngine, TuningEngine};
use crate::error::CapesError;
use crate::experiment::TickObserver;
use crate::hyperparams::Hyperparameters;
use crate::objective::Objective;
use crate::system::{CapesSystem, Transport};
use crate::target::TargetSystem;
use capes_agents::ActionChecker;
use capes_drl::DqnAgent;

/// Entry point for the builder API.
pub struct Capes;

impl Capes {
    /// Starts building a CAPES deployment around `target`.
    pub fn builder<T: TargetSystem>(target: T) -> CapesBuilder<T> {
        CapesBuilder {
            target,
            hyperparams: Hyperparameters::paper(),
            objective: Objective::Throughput,
            checker: ActionChecker::permissive(),
            seed: 0,
            engine: None,
            observers: Vec::new(),
            transport: Transport::InProcess,
        }
    }
}

/// Configures and assembles a [`CapesSystem`].
///
/// Defaults match the paper's evaluation: Table-1 hyperparameters, the
/// throughput objective, a permissive Action Checker and the DQN engine.
pub struct CapesBuilder<T: TargetSystem> {
    target: T,
    hyperparams: Hyperparameters,
    objective: Objective,
    checker: ActionChecker,
    seed: u64,
    engine: Option<Box<dyn TuningEngine>>,
    observers: Vec<Box<dyn TickObserver>>,
    transport: Transport,
}

impl<T: TargetSystem> CapesBuilder<T> {
    /// Sets the hyperparameters (default: [`Hyperparameters::paper`]).
    #[must_use]
    pub fn hyperparams(mut self, hyperparams: Hyperparameters) -> Self {
        self.hyperparams = hyperparams;
        self
    }

    /// Sets the objective function (default: [`Objective::Throughput`]).
    #[must_use]
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Sets the Action Checker (default: permissive).
    #[must_use]
    pub fn checker(mut self, checker: ActionChecker) -> Self {
        self.checker = checker;
        self
    }

    /// Sets the RNG seed shared by the engine and the system (default: 0).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the default DQN engine with any [`TuningEngine`] (e.g. the
    /// search comparators wrapped in [`crate::engine::SearchEngine`]).
    #[must_use]
    pub fn engine(mut self, engine: Box<dyn TuningEngine>) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Registers a per-tick observer; may be called repeatedly. A plain
    /// `FnMut(PhaseKind, &SystemTick)` closure works.
    #[must_use]
    pub fn observer<O: TickObserver + 'static>(mut self, observer: O) -> Self {
        self.observers.push(Box::new(observer));
        self
    }

    /// Sets the monitoring transport (default: [`Transport::InProcess`]).
    /// [`Transport::Wire`] routes every monitoring message through the binary
    /// wire codec, exactly as a networked deployment would.
    #[must_use]
    pub fn transport(mut self, transport: Transport) -> Self {
        self.transport = transport;
        self
    }

    /// Validates the configuration and assembles the system.
    ///
    /// # Errors
    ///
    /// * [`CapesError::InvalidHyperparameter`] if any hyperparameter violates
    ///   its constraint;
    /// * [`CapesError::NoTunableParameters`] if the target exposes an empty
    ///   tunable-spec list.
    pub fn build(self) -> Result<CapesSystem<T>, CapesError> {
        self.hyperparams.validate()?;
        let specs = self.target.tunable_specs();
        if specs.is_empty() {
            return Err(CapesError::NoTunableParameters);
        }
        let engine = match self.engine {
            Some(engine) => engine,
            None => {
                // The default engine: a freshly-initialised DQN sized for the
                // target's observation width and parameter count.
                let observation_size = self
                    .hyperparams
                    .observation_size(self.target.num_nodes(), self.target.pis_per_node());
                let config = self.hyperparams.agent_config(observation_size, specs.len());
                Box::new(DrlEngine::new(DqnAgent::new(config, self.seed ^ 0x5eed)))
            }
        };
        Ok(CapesSystem::assemble(
            self.target,
            self.hyperparams,
            self.objective,
            self.checker,
            self.seed,
            engine,
            self.observers,
            self.transport,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SearchEngine;
    use crate::target::test_target::QuadraticTarget;
    use crate::target::{TargetTick, TunableSpec};
    use crate::tuners::StaticBaseline;

    /// A target with no tunable parameters (invalid for CAPES).
    struct Untunable;

    impl TargetSystem for Untunable {
        fn num_nodes(&self) -> usize {
            1
        }
        fn pis_per_node(&self) -> usize {
            1
        }
        fn tunable_specs(&self) -> Vec<TunableSpec> {
            Vec::new()
        }
        fn current_params(&self) -> Vec<f64> {
            Vec::new()
        }
        fn apply_params(&mut self, _values: &[f64]) {}
        fn step(&mut self) -> TargetTick {
            TargetTick {
                per_node_pis: vec![vec![0.0]],
                throughput_mbps: 1.0,
                latency_ms: 1.0,
            }
        }
    }

    #[test]
    fn default_build_succeeds_with_dqn_engine() {
        let system = Capes::builder(QuadraticTarget::new(60.0))
            .hyperparams(Hyperparameters::quick_test())
            .seed(1)
            .build()
            .expect("valid configuration");
        assert_eq!(system.engine().name(), "deep RL (DQN)");
        assert!(system.dqn_agent().is_some());
        assert_eq!(system.current_params(), vec![10.0]);
    }

    #[test]
    fn invalid_hyperparameters_are_reported_not_panicked() {
        let result = Capes::builder(QuadraticTarget::new(60.0))
            .hyperparams(Hyperparameters {
                discount_rate: 1.5,
                ..Hyperparameters::paper()
            })
            .build();
        match result {
            Err(CapesError::InvalidHyperparameter { name, .. }) => {
                assert_eq!(name, "discount_rate");
            }
            Err(other) => panic!("expected InvalidHyperparameter, got {other:?}"),
            Ok(_) => panic!("expected InvalidHyperparameter, got a built system"),
        }
    }

    #[test]
    fn empty_tunable_specs_are_reported_not_panicked() {
        let result = Capes::builder(Untunable).build();
        assert!(matches!(result, Err(CapesError::NoTunableParameters)));
    }

    #[test]
    fn custom_engine_is_used() {
        let system = Capes::builder(QuadraticTarget::new(60.0))
            .hyperparams(Hyperparameters::quick_test())
            .engine(Box::new(SearchEngine::new(StaticBaseline, 10)))
            .build()
            .expect("valid configuration");
        assert_eq!(system.engine().name(), "static defaults");
        assert!(system.dqn_agent().is_none());
    }
}
