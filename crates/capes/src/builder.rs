//! Builder-first construction of a CAPES deployment.
//!
//! Replaces the telescoping constructors (`CapesSystem::new`,
//! `CapesSystem::with_objective_and_checker`) with one fallible builder:
//!
//! ```
//! use capes::prelude::*;
//!
//! let target = SimulatedLustre::builder()
//!     .workload(Workload::random_rw(0.1))
//!     .seed(7)
//!     .build();
//! let system = Capes::builder(target)
//!     .hyperparams(Hyperparameters::quick_test())
//!     .objective(Objective::Throughput)
//!     .seed(7)
//!     .build()
//!     .expect("valid configuration");
//! assert_eq!(system.tick(), 0);
//! ```
//!
//! Invalid configurations are reported as [`CapesError`] values instead of
//! panics, and every part of the deployment — objective, Action Checker,
//! tuning engine, tick observers — is optional with the paper's evaluation
//! setup as the default.

use crate::engine::{DrlEngine, TuningEngine};
use crate::error::CapesError;
use crate::experiment::TickObserver;
use crate::hyperparams::Hyperparameters;
use crate::objective::Objective;
use crate::system::{CapesSystem, Transport};
use crate::target::TargetSystem;
use capes_agents::ActionChecker;
use capes_drl::{DqnAgent, SamplingScope};
use capes_replay::SharedReplayDb;

/// Entry point for the builder API.
pub struct Capes;

impl Capes {
    /// Starts building a CAPES deployment around `target`.
    pub fn builder<T: TargetSystem>(target: T) -> CapesBuilder<T> {
        CapesBuilder {
            target,
            hyperparams: Hyperparameters::paper(),
            objective: Objective::Throughput,
            checker: ActionChecker::permissive(),
            seed: 0,
            engine: None,
            observers: Vec::new(),
            transport: Transport::InProcess,
            replay_db: None,
            sampling_scope: None,
        }
    }
}

/// Configures and assembles a [`CapesSystem`].
///
/// Defaults match the paper's evaluation: Table-1 hyperparameters, the
/// throughput objective, a permissive Action Checker and the DQN engine.
pub struct CapesBuilder<T: TargetSystem> {
    target: T,
    hyperparams: Hyperparameters,
    objective: Objective,
    checker: ActionChecker,
    seed: u64,
    engine: Option<Box<dyn TuningEngine>>,
    observers: Vec<Box<dyn TickObserver>>,
    transport: Transport,
    replay_db: Option<SharedReplayDb>,
    sampling_scope: Option<SamplingScope>,
}

impl<T: TargetSystem> CapesBuilder<T> {
    /// Sets the hyperparameters (default: [`Hyperparameters::paper`]).
    #[must_use]
    pub fn hyperparams(mut self, hyperparams: Hyperparameters) -> Self {
        self.hyperparams = hyperparams;
        self
    }

    /// Sets the objective function (default: [`Objective::Throughput`]).
    #[must_use]
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Sets the Action Checker (default: permissive).
    #[must_use]
    pub fn checker(mut self, checker: ActionChecker) -> Self {
        self.checker = checker;
        self
    }

    /// Sets the RNG seed shared by the engine and the system (default: 0).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the default DQN engine with any [`TuningEngine`] (e.g. the
    /// search comparators wrapped in [`crate::engine::SearchEngine`]).
    #[must_use]
    pub fn engine(mut self, engine: Box<dyn TuningEngine>) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Registers a per-tick observer; may be called repeatedly. A plain
    /// `FnMut(PhaseKind, &SystemTick)` closure works.
    #[must_use]
    pub fn observer<O: TickObserver + 'static>(mut self, observer: O) -> Self {
        self.observers.push(Box::new(observer));
        self
    }

    /// Sets the monitoring transport (default: [`Transport::InProcess`]).
    /// [`Transport::Wire`] routes every monitoring message through the binary
    /// wire codec, exactly as a networked deployment would.
    #[must_use]
    pub fn transport(mut self, transport: Transport) -> Self {
        self.transport = transport;
        self
    }

    /// Supplies the replay store to write into — an arena stripe view. By
    /// default the system builds its own standalone one-stripe arena; a
    /// fleet passes each member a stripe of the shared fleet arena here, so
    /// all clusters store experience in one striped structure. The stripe's
    /// configuration must match what the system would derive for its target
    /// (checked in [`CapesBuilder::build`]).
    #[must_use]
    pub fn replay_db(mut self, db: SharedReplayDb) -> Self {
        self.replay_db = Some(db);
        self
    }

    /// Sets the replay [`SamplingScope`] of the DRL engine (default:
    /// [`SamplingScope::Own`]). [`SamplingScope::Profile`] makes training
    /// steps sample a weighted stripe set of the replay arena — experience
    /// sharing across the clusters of one profile. Ignored by engines that do
    /// not learn from the replay database.
    #[must_use]
    pub fn sampling_scope(mut self, scope: SamplingScope) -> Self {
        self.sampling_scope = Some(scope);
        self
    }

    /// Validates the configuration and assembles the system.
    ///
    /// # Errors
    ///
    /// * [`CapesError::InvalidHyperparameter`] if any hyperparameter violates
    ///   its constraint;
    /// * [`CapesError::NoTunableParameters`] if the target exposes an empty
    ///   tunable-spec list;
    /// * [`CapesError::ReplayConfigMismatch`] if a supplied replay stripe was
    ///   configured for a different geometry than the target needs;
    /// * [`CapesError::InvalidSamplingScope`] if a profile scope's weight
    ///   vector does not fit the system's arena.
    pub fn build(self) -> Result<CapesSystem<T>, CapesError> {
        self.hyperparams.validate()?;
        let specs = self.target.tunable_specs();
        if specs.is_empty() {
            return Err(CapesError::NoTunableParameters);
        }
        if let Some(db) = &self.replay_db {
            let expected = self
                .hyperparams
                .replay_config(self.target.num_nodes(), self.target.pis_per_node());
            let provided = db.with_read(|db| *db.config());
            if provided != expected {
                return Err(CapesError::ReplayConfigMismatch {
                    reason: format!("expected {expected:?}, stripe holds {provided:?}"),
                });
            }
        }
        if let Some(SamplingScope::Profile { weights }) = &self.sampling_scope {
            // Without an external stripe the system builds a one-stripe arena.
            let stripes = self
                .replay_db
                .as_ref()
                .map_or(1, |db| db.arena().num_stripes());
            if weights.len() != stripes {
                return Err(CapesError::InvalidSamplingScope {
                    reason: format!(
                        "scope carries {} weights but the arena has {stripes} stripes",
                        weights.len()
                    ),
                });
            }
            if weights.iter().any(|w| !w.is_finite() || *w < 0.0)
                || weights.iter().all(|&w| w <= 0.0)
            {
                return Err(CapesError::InvalidSamplingScope {
                    reason: "weights must be finite, non-negative and not all zero".into(),
                });
            }
        }
        let mut engine = match self.engine {
            Some(engine) => engine,
            None => {
                // The default engine: a freshly-initialised DQN sized for the
                // target's observation width and parameter count.
                let observation_size = self
                    .hyperparams
                    .observation_size(self.target.num_nodes(), self.target.pis_per_node());
                let config = self.hyperparams.agent_config(observation_size, specs.len());
                Box::new(DrlEngine::new(DqnAgent::new(config, self.seed ^ 0x5eed)))
            }
        };
        if let Some(scope) = self.sampling_scope {
            if let Some(drl) = engine.as_any_mut().downcast_mut::<DrlEngine>() {
                drl.set_scope(scope);
            }
        }
        Ok(CapesSystem::assemble(
            self.target,
            self.hyperparams,
            self.objective,
            self.checker,
            self.seed,
            engine,
            self.observers,
            self.transport,
            self.replay_db,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SearchEngine;
    use crate::target::test_target::QuadraticTarget;
    use crate::target::{TargetTick, TunableSpec};
    use crate::tuners::StaticBaseline;

    /// A target with no tunable parameters (invalid for CAPES).
    struct Untunable;

    impl TargetSystem for Untunable {
        fn num_nodes(&self) -> usize {
            1
        }
        fn pis_per_node(&self) -> usize {
            1
        }
        fn tunable_specs(&self) -> Vec<TunableSpec> {
            Vec::new()
        }
        fn current_params(&self) -> Vec<f64> {
            Vec::new()
        }
        fn apply_params(&mut self, _values: &[f64]) {}
        fn step(&mut self) -> TargetTick {
            TargetTick {
                per_node_pis: vec![vec![0.0]],
                throughput_mbps: 1.0,
                latency_ms: 1.0,
            }
        }
    }

    #[test]
    fn default_build_succeeds_with_dqn_engine() {
        let system = Capes::builder(QuadraticTarget::new(60.0))
            .hyperparams(Hyperparameters::quick_test())
            .seed(1)
            .build()
            .expect("valid configuration");
        assert_eq!(system.engine().name(), "deep RL (DQN)");
        assert!(system.dqn_agent().is_some());
        assert_eq!(system.current_params(), vec![10.0]);
    }

    #[test]
    fn invalid_hyperparameters_are_reported_not_panicked() {
        let result = Capes::builder(QuadraticTarget::new(60.0))
            .hyperparams(Hyperparameters {
                discount_rate: 1.5,
                ..Hyperparameters::paper()
            })
            .build();
        match result {
            Err(CapesError::InvalidHyperparameter { name, .. }) => {
                assert_eq!(name, "discount_rate");
            }
            Err(other) => panic!("expected InvalidHyperparameter, got {other:?}"),
            Ok(_) => panic!("expected InvalidHyperparameter, got a built system"),
        }
    }

    #[test]
    fn empty_tunable_specs_are_reported_not_panicked() {
        let result = Capes::builder(Untunable).build();
        assert!(matches!(result, Err(CapesError::NoTunableParameters)));
    }

    #[test]
    fn external_arena_stripe_is_used_as_the_replay_store() {
        let hp = Hyperparameters::quick_test();
        // QuadraticTarget: 1 node × 2 PIs.
        let arena = capes_replay::ReplayArena::uniform(hp.replay_config(1, 2), 3);
        let system = Capes::builder(QuadraticTarget::new(60.0))
            .hyperparams(hp)
            .replay_db(arena.stripe(2))
            .build()
            .expect("matching stripe config");
        assert_eq!(system.replay_db().stripe_index(), 2);
        assert_eq!(system.replay_db().arena().num_stripes(), 3);
    }

    #[test]
    fn mismatched_replay_stripe_is_a_typed_error() {
        let hp = Hyperparameters::quick_test();
        let wrong = capes_replay::ReplayConfig {
            pis_per_node: 7,
            ..hp.replay_config(1, 2)
        };
        let result = Capes::builder(QuadraticTarget::new(60.0))
            .hyperparams(hp)
            .replay_db(capes_replay::SharedReplayDb::new(wrong))
            .build();
        assert!(matches!(
            result,
            Err(CapesError::ReplayConfigMismatch { .. })
        ));
    }

    #[test]
    fn profile_scope_weights_are_validated_against_the_arena() {
        // Two weights against the default one-stripe arena.
        let result = Capes::builder(QuadraticTarget::new(60.0))
            .hyperparams(Hyperparameters::quick_test())
            .sampling_scope(SamplingScope::Profile {
                weights: vec![1.0, 1.0],
            })
            .build();
        assert!(matches!(
            result,
            Err(CapesError::InvalidSamplingScope { .. })
        ));
        // All-zero weights are rejected too.
        let result = Capes::builder(QuadraticTarget::new(60.0))
            .hyperparams(Hyperparameters::quick_test())
            .sampling_scope(SamplingScope::Profile { weights: vec![0.0] })
            .build();
        assert!(matches!(
            result,
            Err(CapesError::InvalidSamplingScope { .. })
        ));
    }

    #[test]
    fn sampling_scope_reaches_the_default_drl_engine() {
        let system = Capes::builder(QuadraticTarget::new(60.0))
            .hyperparams(Hyperparameters::quick_test())
            .sampling_scope(SamplingScope::Profile { weights: vec![1.0] })
            .build()
            .expect("valid configuration");
        let engine = system
            .engine()
            .as_any()
            .downcast_ref::<DrlEngine>()
            .expect("default engine is the DQN");
        assert!(matches!(engine.scope(), SamplingScope::Profile { .. }));
    }

    #[test]
    fn custom_engine_is_used() {
        let system = Capes::builder(QuadraticTarget::new(60.0))
            .hyperparams(Hyperparameters::quick_test())
            .engine(Box::new(SearchEngine::new(StaticBaseline, 10)))
            .build()
            .expect("valid configuration");
        assert_eq!(system.engine().name(), "static defaults");
        assert!(system.dqn_agent().is_none());
    }
}
