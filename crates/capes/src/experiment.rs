//! Declarative experiment plans.
//!
//! The paper's evaluation workflow (Appendix A.4) is always some arrangement
//! of three phases: *train* (CAPES on, ε-greedy actions, 12–24 h), *baseline*
//! (CAPES off, default parameters) and *tuned* (trained policy acting
//! greedily). [`Experiment`] encodes that workflow declaratively:
//!
//! ```
//! use capes::prelude::*;
//!
//! let target = SimulatedLustre::builder().seed(7).build();
//! let system = Capes::builder(target)
//!     .hyperparams(Hyperparameters::quick_test())
//!     .seed(7)
//!     .build()
//!     .unwrap();
//! let report = Experiment::new(system)
//!     .phase(Phase::Baseline { ticks: 40 })
//!     .phase(Phase::Train { ticks: 60 })
//!     .phase(Phase::Tuned { ticks: 40, label: "tuned".into() })
//!     .run();
//! assert_eq!(report.sessions.len(), 3);
//! ```
//!
//! The resulting [`ExperimentReport`] aggregates the per-phase
//! [`SessionResult`]s, computes improvements over the baseline and serializes
//! to JSON for the figure binaries.

use crate::session::SessionResult;
use crate::system::{CapesSystem, SystemTick};
use crate::target::TargetSystem;
use serde::{Deserialize, Serialize};

/// The kind of work a phase performs (also tags every [`SessionResult`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhaseKind {
    /// Parameters reset to defaults; no engine involvement.
    Baseline,
    /// The engine explores/learns while the system serves the workload.
    Train,
    /// The engine exploits what it has learnt; no training.
    Tuned,
}

impl PhaseKind {
    /// Lower-case label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            PhaseKind::Baseline => "baseline",
            PhaseKind::Train => "training",
            PhaseKind::Tuned => "tuned",
        }
    }
}

/// One phase of an experiment plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Phase {
    /// Reset parameters to their defaults and measure without tuning.
    Baseline {
        /// Phase length in ticks (simulated seconds).
        ticks: u64,
    },
    /// Online training/search: exploratory actions plus training steps.
    Train {
        /// Phase length in ticks.
        ticks: u64,
    },
    /// Measure with the engine exploiting (greedy policy / best candidate).
    Tuned {
        /// Phase length in ticks.
        ticks: u64,
        /// Label attached to the resulting session (e.g. `"after 12h"`).
        label: String,
    },
}

impl Phase {
    /// The phase's kind.
    pub fn kind(&self) -> PhaseKind {
        match self {
            Phase::Baseline { .. } => PhaseKind::Baseline,
            Phase::Train { .. } => PhaseKind::Train,
            Phase::Tuned { .. } => PhaseKind::Tuned,
        }
    }

    /// The phase's length in ticks.
    pub fn ticks(&self) -> u64 {
        match self {
            Phase::Baseline { ticks } | Phase::Train { ticks } | Phase::Tuned { ticks, .. } => {
                *ticks
            }
        }
    }

    /// The label the phase's session will carry.
    pub fn label(&self) -> String {
        match self {
            Phase::Tuned { label, .. } => label.clone(),
            other => other.kind().label().to_string(),
        }
    }
}

/// Streaming consumer of per-tick telemetry during any phase.
///
/// Observers are registered on the builder
/// ([`crate::builder::CapesBuilder::observer`]) and invoked by the system for
/// every tick it runs, so monitoring dashboards and bench harnesses can watch
/// a run without polling. A plain `FnMut(PhaseKind, &SystemTick)` closure is
/// an observer.
///
/// Observers must be [`Send`]: member systems (which own their observers)
/// migrate across the fleet daemon's worker threads during parallel ticking.
pub trait TickObserver: Send {
    /// Called when a phase starts.
    fn on_phase_start(&mut self, _kind: PhaseKind, _label: &str) {}

    /// Called for every tick the system runs.
    fn on_tick(&mut self, kind: PhaseKind, tick: &SystemTick);

    /// Called when a phase completes, with the phase's session result.
    fn on_phase_end(&mut self, _kind: PhaseKind, _result: &SessionResult) {}
}

impl<F: FnMut(PhaseKind, &SystemTick) + Send> TickObserver for F {
    fn on_tick(&mut self, kind: PhaseKind, tick: &SystemTick) {
        self(kind, tick)
    }
}

/// A declarative experiment: a system plus an ordered list of phases.
pub struct Experiment<T: TargetSystem> {
    system: CapesSystem<T>,
    phases: Vec<Phase>,
}

impl<T: TargetSystem> Experiment<T> {
    /// Starts an experiment plan around an assembled system.
    pub fn new(system: CapesSystem<T>) -> Self {
        Experiment {
            system,
            phases: Vec::new(),
        }
    }

    /// Appends a phase to the plan.
    #[must_use]
    pub fn phase(mut self, phase: Phase) -> Self {
        self.phases.push(phase);
        self
    }

    /// The phases queued so far.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Read access to the underlying system.
    pub fn system(&self) -> &CapesSystem<T> {
        &self.system
    }

    /// Mutable access to the underlying system (e.g. to change workloads or
    /// restore checkpoints between `run` calls).
    pub fn system_mut(&mut self) -> &mut CapesSystem<T> {
        &mut self.system
    }

    /// Consumes the experiment, returning the system (e.g. to checkpoint it).
    pub fn into_system(self) -> CapesSystem<T> {
        self.system
    }

    /// Runs every queued phase in order and drains the plan, leaving the
    /// experiment ready for further `phase(..)` / `run()` rounds on the same
    /// system (the Figure-2 "train 12 h, measure, train 12 h more, measure"
    /// protocol).
    pub fn run(&mut self) -> ExperimentReport {
        let phases = std::mem::take(&mut self.phases);
        let mut sessions = Vec::with_capacity(phases.len());
        for phase in &phases {
            sessions.push(self.system.run_phase(phase));
        }
        ExperimentReport { sessions }
    }
}

/// The aggregated outcome of an experiment run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// One session result per executed phase, in plan order.
    pub sessions: Vec<SessionResult>,
}

impl ExperimentReport {
    /// The first baseline session, if the plan had one.
    pub fn baseline(&self) -> Option<&SessionResult> {
        self.sessions.iter().find(|s| s.kind == PhaseKind::Baseline)
    }

    /// The session with the given label.
    pub fn session(&self, label: &str) -> Option<&SessionResult> {
        self.sessions.iter().find(|s| s.label == label)
    }

    /// Relative improvement of the labelled session over the baseline
    /// (`Some(0.45)` means 45 % faster). `None` if either session is missing.
    pub fn improvement_over_baseline(&self, label: &str) -> Option<f64> {
        let baseline = self.baseline()?;
        let session = self.session(label)?;
        Some(session.improvement_over(baseline))
    }

    /// `(label, improvement)` for every non-baseline session, in plan order.
    pub fn improvements_over_baseline(&self) -> Vec<(String, f64)> {
        let Some(baseline) = self.baseline() else {
            return Vec::new();
        };
        self.sessions
            .iter()
            .filter(|s| s.kind != PhaseKind::Baseline)
            .map(|s| (s.label.clone(), s.improvement_over(baseline)))
            .collect()
    }

    /// Paper-style multi-line summary of every session.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for session in &self.sessions {
            out.push_str(&session.summary());
            if let Some(baseline) = self.baseline() {
                if session.kind != PhaseKind::Baseline {
                    out.push_str(&format!(
                        "  ({:+.1}% vs baseline)",
                        session.improvement_over(baseline) * 100.0
                    ));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }

    /// Parses a report back from [`ExperimentReport::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Capes;
    use crate::hyperparams::Hyperparameters;
    use crate::target::test_target::QuadraticTarget;
    use std::sync::{Arc, Mutex};

    fn quick_system() -> CapesSystem<QuadraticTarget> {
        Capes::builder(QuadraticTarget::new(55.0))
            .hyperparams(Hyperparameters {
                sampling_ticks_per_observation: 3,
                exploration_period_ticks: 200,
                adam_learning_rate: 2e-3,
                train_steps_per_tick: 2,
                ..Hyperparameters::quick_test()
            })
            .seed(11)
            .build()
            .expect("valid system")
    }

    #[test]
    fn phases_run_in_order_and_fill_the_report() {
        let mut experiment = Experiment::new(quick_system())
            .phase(Phase::Baseline { ticks: 50 })
            .phase(Phase::Train { ticks: 120 })
            .phase(Phase::Tuned {
                ticks: 50,
                label: "tuned".into(),
            });
        let report = experiment.run();
        assert_eq!(report.sessions.len(), 3);
        assert_eq!(report.sessions[0].kind, PhaseKind::Baseline);
        assert_eq!(report.sessions[1].kind, PhaseKind::Train);
        assert_eq!(report.sessions[2].kind, PhaseKind::Tuned);
        assert_eq!(report.sessions[0].throughput_series.len(), 50);
        assert_eq!(report.sessions[1].throughput_series.len(), 120);
        assert!(report.baseline().is_some());
        assert!(report.session("tuned").is_some());
        assert!(report.improvement_over_baseline("tuned").is_some());
        assert_eq!(report.improvements_over_baseline().len(), 2);
        assert!(report.summary().contains("baseline"));
        // The plan drained; a second run with new phases reuses the system.
        assert!(experiment.phases().is_empty());
        let report2 = experiment.phase(Phase::Train { ticks: 30 }).run();
        assert_eq!(report2.sessions.len(), 1);
    }

    #[test]
    fn phase_accessors() {
        assert_eq!(Phase::Baseline { ticks: 5 }.kind(), PhaseKind::Baseline);
        assert_eq!(Phase::Train { ticks: 7 }.ticks(), 7);
        let tuned = Phase::Tuned {
            ticks: 9,
            label: "after 12h".into(),
        };
        assert_eq!(tuned.label(), "after 12h");
        assert_eq!(Phase::Train { ticks: 1 }.label(), "training");
        assert_eq!(PhaseKind::Tuned.label(), "tuned");
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut experiment = Experiment::new(quick_system())
            .phase(Phase::Baseline { ticks: 30 })
            .phase(Phase::Tuned {
                ticks: 30,
                label: "t".into(),
            });
        let report = experiment.run();
        let json = report.to_json();
        let back = ExperimentReport::from_json(&json).expect("round trip");
        assert_eq!(back.sessions.len(), report.sessions.len());
        assert_eq!(back.sessions[0].kind, PhaseKind::Baseline);
        assert_eq!(back.sessions[1].label, "t");
        assert!(
            (back.sessions[0].mean_throughput() - report.sessions[0].mean_throughput()).abs()
                < 1e-9
        );
    }

    #[test]
    fn observers_stream_every_tick() {
        // Observers are `Send` (fleet members shard across worker threads),
        // so the stream is collected behind an Arc<Mutex>.
        let seen: Arc<Mutex<Vec<(PhaseKind, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        let system = Capes::builder(QuadraticTarget::new(50.0))
            .hyperparams(Hyperparameters::quick_test())
            .seed(3)
            .observer(move |kind: PhaseKind, tick: &SystemTick| {
                sink.lock().unwrap().push((kind, tick.tick));
            })
            .build()
            .expect("valid system");
        let mut experiment = Experiment::new(system)
            .phase(Phase::Baseline { ticks: 10 })
            .phase(Phase::Train { ticks: 15 });
        experiment.run();
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 25);
        assert!(seen[..10].iter().all(|(k, _)| *k == PhaseKind::Baseline));
        assert!(seen[10..].iter().all(|(k, _)| *k == PhaseKind::Train));
        // Ticks are globally monotonic across phases.
        assert!(seen.windows(2).all(|w| w[1].1 == w[0].1 + 1));
    }
}
