//! Session results and the legacy session runners.
//!
//! The paper's evaluation workflow (Appendix A.4) is "turn on CAPES and train
//! for 12–24 hours, turn it off and measure the baseline, turn it on and
//! measure the tuned performance". Those phases are now expressed
//! declaratively with [`crate::experiment::Experiment`] and
//! [`crate::experiment::Phase`]; the free `run_*_session` functions remain as
//! thin deprecated shims over [`crate::system::CapesSystem::run_phase`] for
//! one release.

use crate::experiment::{Phase, PhaseKind};
use crate::system::CapesSystem;
use crate::target::TargetSystem;
use capes_stats::{analyze, AnalysisConfig, AnalysisReport};
use serde::{Deserialize, Serialize};

/// The outcome of one measurement or training session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionResult {
    /// The kind of phase that produced this session.
    pub kind: PhaseKind,
    /// Human-readable label ("baseline", "tuned after 12 h", …).
    pub label: String,
    /// Per-second aggregate throughput, MB/s.
    pub throughput_series: Vec<f64>,
    /// `(tick, prediction error)` pairs from training steps run during the
    /// session (empty for baseline/tuning sessions).
    pub prediction_errors: Vec<(u64, f64)>,
    /// Pilot-style statistical analysis of the throughput series.
    pub analysis: AnalysisReport,
    /// Parameter values in force at the end of the session.
    pub final_params: Vec<f64>,
}

impl SessionResult {
    /// Mean steady-state throughput (after transient removal and subsession
    /// analysis), MB/s.
    pub fn mean_throughput(&self) -> f64 {
        self.analysis.interval.mean
    }

    /// Half-width of the 95 % confidence interval on the mean throughput.
    pub fn ci_half_width(&self) -> f64 {
        self.analysis.interval.half_width
    }

    /// Relative improvement of this session over `baseline`
    /// (`0.45` means 45 % faster).
    pub fn improvement_over(&self, baseline: &SessionResult) -> f64 {
        if baseline.mean_throughput() <= 0.0 {
            return 0.0;
        }
        self.mean_throughput() / baseline.mean_throughput() - 1.0
    }

    /// Paper-style one-line summary, e.g. `"tuned: 312.4 ± 5.1 MB/s"`.
    pub fn summary(&self) -> String {
        format!(
            "{}: {:.1} ± {:.1} MB/s",
            self.label,
            self.mean_throughput(),
            self.ci_half_width()
        )
    }

    /// Builds a session result from a measured throughput series, running the
    /// Pilot-style statistical analysis. Public so external phase drivers
    /// (the fleet daemon) can assemble results through the exact code path
    /// [`CapesSystem::run_phase`](crate::system::CapesSystem::run_phase) uses.
    pub fn from_series(
        kind: PhaseKind,
        label: impl Into<String>,
        series: Vec<f64>,
        prediction_errors: Vec<(u64, f64)>,
        final_params: Vec<f64>,
    ) -> Self {
        let analysis = analyze(&series, &AnalysisConfig::default());
        SessionResult {
            kind,
            label: label.into(),
            throughput_series: series,
            prediction_errors,
            analysis,
            final_params,
        }
    }
}

/// Runs `ticks` seconds of online training (exploratory actions plus training
/// steps), as the paper does for 12–24 hours before measuring.
#[deprecated(note = "use `Experiment::new(system).phase(Phase::Train { ticks }).run()` instead")]
pub fn run_training_session<T: TargetSystem>(
    system: &mut CapesSystem<T>,
    ticks: u64,
) -> SessionResult {
    system.run_phase(&Phase::Train { ticks })
}

/// Runs `ticks` seconds with the trained policy acting greedily (the "tuned"
/// measurements of Figures 2–4).
#[deprecated(
    note = "use `Experiment::new(system).phase(Phase::Tuned { ticks, label }).run()` instead"
)]
pub fn run_tuning_session<T: TargetSystem>(
    system: &mut CapesSystem<T>,
    ticks: u64,
    label: impl Into<String>,
) -> SessionResult {
    system.run_phase(&Phase::Tuned {
        ticks,
        label: label.into(),
    })
}

/// Resets the parameters to their defaults and runs `ticks` seconds without
/// any tuning (the "baseline, default Lustre settings" measurements).
#[deprecated(note = "use `Experiment::new(system).phase(Phase::Baseline { ticks }).run()` instead")]
pub fn run_baseline_session<T: TargetSystem>(
    system: &mut CapesSystem<T>,
    ticks: u64,
    label: impl Into<String>,
) -> SessionResult {
    let mut result = system.run_phase(&Phase::Baseline { ticks });
    result.label = label.into();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Capes;
    use crate::hyperparams::Hyperparameters;
    use crate::target::test_target::QuadraticTarget;

    fn system() -> CapesSystem<QuadraticTarget> {
        Capes::builder(QuadraticTarget::new(55.0))
            .hyperparams(Hyperparameters {
                sampling_ticks_per_observation: 3,
                exploration_period_ticks: 200,
                adam_learning_rate: 2e-3,
                train_steps_per_tick: 2,
                ..Hyperparameters::quick_test()
            })
            .seed(11)
            .build()
            .expect("valid configuration")
    }

    #[test]
    fn phases_produce_series_and_statistics() {
        let mut sys = system();
        let baseline = sys.run_phase(&Phase::Baseline { ticks: 120 });
        assert_eq!(baseline.kind, PhaseKind::Baseline);
        assert_eq!(baseline.throughput_series.len(), 120);
        assert!(baseline.mean_throughput() > 0.0);
        assert!(baseline.prediction_errors.is_empty());
        assert!(baseline.summary().contains("baseline"));
        assert_eq!(baseline.final_params, vec![10.0]);

        let training = sys.run_phase(&Phase::Train { ticks: 300 });
        assert_eq!(training.kind, PhaseKind::Train);
        assert_eq!(training.throughput_series.len(), 300);
        assert!(!training.prediction_errors.is_empty());

        let tuned = sys.run_phase(&Phase::Tuned {
            ticks: 120,
            label: "tuned".into(),
        });
        assert_eq!(tuned.kind, PhaseKind::Tuned);
        assert_eq!(tuned.throughput_series.len(), 120);
        assert!(tuned.label == "tuned");
    }

    #[test]
    fn improvement_is_relative_to_baseline() {
        let base = SessionResult::from_series(
            PhaseKind::Baseline,
            "b",
            vec![100.0; 64],
            Vec::new(),
            vec![],
        );
        let better =
            SessionResult::from_series(PhaseKind::Tuned, "t", vec![145.0; 64], Vec::new(), vec![]);
        let improvement = better.improvement_over(&base);
        assert!((improvement - 0.45).abs() < 1e-9);
        assert_eq!(base.improvement_over(&base), 0.0);
    }

    #[test]
    fn baseline_phase_resets_parameters() {
        let mut sys = system();
        sys.target_mut().apply_params(&[90.0]);
        let baseline = sys.run_phase(&Phase::Baseline { ticks: 30 });
        assert_eq!(baseline.final_params, vec![10.0], "defaults restored first");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_still_work() {
        let mut sys = system();
        let baseline = run_baseline_session(&mut sys, 30, "custom baseline label");
        assert_eq!(baseline.label, "custom baseline label");
        assert_eq!(baseline.kind, PhaseKind::Baseline);
        let training = run_training_session(&mut sys, 40);
        assert_eq!(training.kind, PhaseKind::Train);
        assert_eq!(training.label, "training");
        let tuned = run_tuning_session(&mut sys, 30, "tuned");
        assert_eq!(tuned.kind, PhaseKind::Tuned);
        assert_eq!(tuned.throughput_series.len(), 30);
    }

    #[test]
    fn serde_round_trip() {
        let r = SessionResult::from_series(
            PhaseKind::Train,
            "x",
            vec![1.0, 2.0, 3.0, 4.0],
            vec![(0, 0.5)],
            vec![8.0],
        );
        let json = serde_json::to_string(&r).unwrap();
        let back: SessionResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.label, "x");
        assert_eq!(back.kind, PhaseKind::Train);
        assert_eq!(back.throughput_series.len(), 4);
    }
}
