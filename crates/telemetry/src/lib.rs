//! # capes-telemetry
//!
//! The observability substrate for the CAPES reproduction (ISSUE 8): a
//! global metrics registry of atomic counters, gauges and log-linear latency
//! histograms, plus a lightweight span/tracing layer feeding them.
//!
//! CAPES is itself a monitoring-driven control loop, so its reproduction
//! gets the same treatment: every hot stage of the stack — fleet tick
//! phases, GEMM kernels, replay-arena sampling, daemon ingest, socket I/O,
//! checkpointing — records into this registry, and a running fleet can be
//! scraped Prometheus-style through the `capes-net` reactor's `/metrics`
//! endpoint or snapshotted into `FleetReport.telemetry` at the end of a run.
//!
//! Design rules, in order:
//!
//! 1. **Allocation-free on the record path.** Metric handles are interned
//!    once at registration (the only place the registry mutex is taken);
//!    recording a value is a handful of relaxed atomic adds into
//!    preallocated buckets. The PR 2 counting-allocator guarantee
//!    (`crates/drl/tests/zero_alloc.rs`) holds with instrumentation on.
//! 2. **Lock-free recording.** Counters and gauges are single `AtomicU64`s;
//!    histograms are arrays of them. Eight threads hammering one histogram
//!    lose no counts (`tests/concurrency.rs`).
//! 3. **Cheap when idle.** [`span!`] call sites cache their histogram in a
//!    function-local `OnceLock`; with recording disabled
//!    ([`set_recording`]) a span is one relaxed load, and the per-thread
//!    event journal only engages under `CAPES_TRACE=on`.
//!
//! ## Metric naming
//!
//! Dotted lowercase paths, component first:
//!
//! | family | metrics |
//! |---|---|
//! | fleet | `fleet.tick.{gather,decide,scatter,train,total}` (histograms), `fleet.tick.recent_rate` (gauge), `fleet.cluster.<name>.objective` (gauge) |
//! | drl | `drl.train_step` (histogram) |
//! | gemm | `gemm.pool_dispatch`, `gemm.kernel.{avx2,scalar}` (histograms) |
//! | arena | `arena.lock_wait`, `arena.sample` (histograms) |
//! | daemon | `daemon.ingest` (histogram), `daemon.reports_rejected`, `daemon.implausible_ticks` (counters) |
//! | net | `net.read`, `net.decode`, `net.egress` (histograms), `net.ingress.depth` (gauge), plus the `net.*` counters mirroring `NetStats` |
//! | persist | `persist.checkpoint.write`, `persist.checkpoint.fsync`, `persist.restore` (histograms) plus `persist.*` counters |
//!
//! Exposition mangles dots to underscores (`fleet_tick_total`).
//!
//! ## Histogram layout
//!
//! Log-linear (HdrHistogram-style): values 0–31 are exact; above that each
//! power-of-two octave is split into 32 linear sub-buckets, so relative
//! quantile error is bounded at ~3% across the full `u64` range. Values are
//! nanoseconds everywhere a span records them.

#![forbid(unsafe_code)]

mod journal;
mod metric;
pub mod names;
mod registry;
mod snapshot;

pub use journal::{dump_journal, journal_capacity, trace_enabled, Event};
pub use metric::{Counter, Gauge, Histogram};
pub use registry::{global, recording, set_recording, Registry};
pub use snapshot::{
    dump_metrics, CounterSnapshot, GaugeSnapshot, HistogramSnapshot, TelemetrySnapshot,
};

use std::sync::OnceLock;
use std::time::Instant;

/// A `span!` call site: the metric name plus a lazily-interned handle to its
/// histogram in the global registry. Created by the [`span!`] macro; the
/// `OnceLock` makes every use after the first a single pointer load.
pub struct LazySpan {
    name: &'static str,
    slot: OnceLock<Histogram>,
}

impl LazySpan {
    /// A call site recording into the global histogram `name`.
    pub const fn new(name: &'static str) -> Self {
        LazySpan {
            name,
            slot: OnceLock::new(),
        }
    }

    /// The interned histogram handle (registered on first use).
    pub fn histogram(&self) -> &Histogram {
        self.slot.get_or_init(|| global().histogram(self.name))
    }

    /// Starts timing. The returned guard records the elapsed nanoseconds
    /// into the histogram when dropped (and into the trace journal under
    /// `CAPES_TRACE=on`). When recording is disabled this is one relaxed
    /// load and no clock read.
    #[inline]
    pub fn enter(&'static self) -> SpanGuard {
        if recording() {
            SpanGuard {
                live: Some((self.name, self.histogram(), Instant::now())),
            }
        } else {
            SpanGuard { live: None }
        }
    }
}

/// RAII timer produced by [`span!`]; records on drop.
pub struct SpanGuard {
    live: Option<(&'static str, &'static Histogram, Instant)>,
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if let Some((name, hist, start)) = self.live.take() {
            let nanos = start.elapsed().as_nanos() as u64;
            hist.record(nanos);
            if trace_enabled() {
                journal::push(name, start, nanos);
            }
        }
    }
}

/// Times the enclosing scope into a global histogram:
///
/// ```
/// fn train_step() {
///     let _span = capes_telemetry::span!("drl.train_step");
///     // ... work ...
/// } // recorded here
/// ```
///
/// The histogram handle is interned once per call site; steady-state cost is
/// two clock reads and three relaxed atomic RMWs.
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        static __CAPES_SPAN: $crate::LazySpan = $crate::LazySpan::new($name);
        __CAPES_SPAN.enter()
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_macro_records_into_the_named_histogram() {
        for _ in 0..10 {
            let _span = span!("test.span_macro");
            std::hint::black_box(0u64);
        }
        let hist = global().histogram("test.span_macro");
        assert_eq!(hist.count(), 10);
        assert!(hist.quantile(0.5) >= 0.0);
    }

    #[test]
    fn disabled_recording_skips_the_histogram() {
        {
            let _span = span!("test.span_disabled_probe");
        }
        let before = global().histogram("test.span_disabled_probe").count();
        set_recording(false);
        {
            let _span = span!("test.span_disabled_probe");
        }
        set_recording(true);
        {
            let _span = span!("test.span_disabled_probe");
        }
        let after = global().histogram("test.span_disabled_probe").count();
        assert_eq!(after, before + 1, "only the enabled span records");
    }
}
