//! Central registry of every metric and span name the workspace emits.
//!
//! `capes-check` (rule `metric-registry`) requires each name literal passed
//! to `span!` / `Registry::{counter,gauge,histogram}` /
//! `Registry::publish_*` in non-test code to appear as a string literal in
//! this module, so the full observable surface is greppable in one place.
//! Names built at runtime (only `fleet.worker.<i>.busy`, below) cannot be
//! literals at the call site and are listed here as their format pattern.
//!
//! Keep names `lowercase.dot.separated`; the leading segment is the owning
//! subsystem.

/// Span: wall-time a replay-arena stripe waits for its lock.
pub const SPAN_ARENA_LOCK_WAIT: &str = "arena.lock_wait";
/// Span: drawing a minibatch sample from the replay arena.
pub const SPAN_ARENA_SAMPLE: &str = "arena.sample";
/// Span: daemon-side ingest of one agent report frame.
pub const SPAN_DAEMON_INGEST: &str = "daemon.ingest";
/// Span and histogram: one DRL optimizer step.
pub const DRL_TRAIN_STEP: &str = "drl.train_step";
/// Span: dispatching a fleet tick batch onto the shard pool.
pub const SPAN_FLEET_POOL_DISPATCH: &str = "fleet.pool_dispatch";
/// Span: dispatching a GEMM row range onto the worker pool.
pub const SPAN_GEMM_POOL_DISPATCH: &str = "gemm.pool_dispatch";
/// Span: draining readable bytes from one connection.
pub const SPAN_NET_READ: &str = "net.read";
/// Span: decoding length-prefixed frames from a connection buffer.
pub const SPAN_NET_DECODE: &str = "net.decode";
/// Span: flushing queued egress bytes to a connection.
pub const SPAN_NET_EGRESS: &str = "net.egress";
/// Span: serializing and fsyncing a durable checkpoint.
pub const SPAN_PERSIST_CHECKPOINT_WRITE: &str = "persist.checkpoint.write";
/// Span: restoring daemon state from a checkpoint.
pub const SPAN_PERSIST_RESTORE: &str = "persist.restore";

/// Histogram: whole fleet tick latency.
pub const FLEET_TICK_TOTAL: &str = "fleet.tick.total";
/// Histogram: gather phase of a fleet tick.
pub const FLEET_TICK_GATHER: &str = "fleet.tick.gather";
/// Histogram: decide phase of a fleet tick.
pub const FLEET_TICK_DECIDE: &str = "fleet.tick.decide";
/// Histogram: scatter phase of a fleet tick.
pub const FLEET_TICK_SCATTER: &str = "fleet.tick.scatter";
/// Histogram: train phase of a fleet tick.
pub const FLEET_TICK_TRAIN: &str = "fleet.tick.train";
/// Gauge: ticks/sec over the recent window.
pub const FLEET_TICK_RECENT_RATE: &str = "fleet.tick.recent_rate";
/// Gauge: configured shard-pool worker count.
pub const FLEET_WORKERS: &str = "fleet.workers";
/// Gauge pattern (runtime-formatted): per-worker busy flag,
/// `fleet.worker.<i>.busy`.
pub const FLEET_WORKER_BUSY_PATTERN: &str = "fleet.worker.{i}.busy";

/// Counter: agent reports rejected by daemon validation.
pub const DAEMON_REPORTS_REJECTED: &str = "daemon.reports_rejected";
/// Counter: ticks whose measurements failed plausibility checks.
pub const DAEMON_IMPLAUSIBLE_TICKS: &str = "daemon.implausible_ticks";

/// Counter: checkpoints written on request.
pub const PERSIST_CHECKPOINTS_WRITTEN: &str = "persist.checkpoints_written";
/// Counter: successful restores.
pub const PERSIST_RESTORES: &str = "persist.restores";
/// Counter: checkpoints written by the auto-checkpoint policy.
pub const PERSIST_AUTO_CHECKPOINTS: &str = "persist.auto_checkpoints";
/// Counter: wire records appended to the traffic log.
pub const PERSIST_RECORDS_APPENDED: &str = "persist.records_appended";
/// Counter: wire-record append failures.
pub const PERSIST_RECORD_FAILURES: &str = "persist.record_failures";
/// Counter: auto-checkpoint attempts that failed.
pub const PERSIST_AUTO_CHECKPOINT_FAILURES: &str = "persist.auto_checkpoint_failures";
/// Histogram: checkpoint fsync latency.
pub const PERSIST_CHECKPOINT_FSYNC: &str = "persist.checkpoint.fsync";

/// Counter: connections accepted.
pub const NET_ACCEPTED: &str = "net.accepted";
/// Gauge: currently active connections.
pub const NET_ACTIVE: &str = "net.active";
/// Counter: connections shed under backpressure.
pub const NET_SHED_BACKPRESSURE: &str = "net.shed_backpressure";
/// Counter: idle connections reaped.
pub const NET_SHED_IDLE: &str = "net.shed_idle";
/// Counter: orderly disconnects.
pub const NET_DISCONNECTS: &str = "net.disconnects";
/// Counter: frames dropped by decode errors.
pub const NET_DECODE_ERRORS: &str = "net.decode_errors";
/// Counter: frames read off the wire.
pub const NET_FRAMES_IN: &str = "net.frames_in";
/// Counter: frames written to the wire.
pub const NET_FRAMES_OUT: &str = "net.frames_out";
/// Counter: bytes read off the wire.
pub const NET_BYTES_IN: &str = "net.bytes_in";
/// Counter: bytes written to the wire.
pub const NET_BYTES_OUT: &str = "net.bytes_out";
/// Gauge: frames queued for ingest, not yet consumed by the daemon.
pub const NET_INGRESS_DEPTH: &str = "net.ingress.depth";
