//! The trace journal: per-thread bounded ring buffers of span events,
//! engaged only under `CAPES_TRACE=on` and dumpable as JSON lines for
//! offline flame-style analysis.
//!
//! Each thread owns one preallocated ring (registered globally on first
//! use); pushing an event overwrites the oldest entry once the ring is
//! full, so a runaway fleet can never grow the journal. The push path
//! allocates nothing after the ring exists — the zero-alloc train-step test
//! runs with `CAPES_TRACE=on` to hold that.

use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Events retained per thread before overwrite-oldest kicks in.
const RING_CAPACITY: usize = 4096;

/// One recorded span occurrence.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Span name (the `span!` literal).
    pub name: &'static str,
    /// Start time, nanoseconds since the process's trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

struct Ring {
    thread: u64,
    events: Vec<Event>,
    /// Next write position; `events.len() < RING_CAPACITY` until first wrap.
    head: usize,
    /// Total pushes ever (so dumps can report how many were overwritten).
    pushed: u64,
}

impl Ring {
    fn push(&mut self, event: Event) {
        if self.events.len() < RING_CAPACITY {
            self.events.push(event);
        } else {
            self.events[self.head % RING_CAPACITY] = event;
        }
        self.head = (self.head + 1) % RING_CAPACITY;
        self.pushed += 1;
    }
}

fn rings() -> &'static Mutex<Vec<Arc<Mutex<Ring>>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Mutex<Ring>>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    static THREAD_RING: Arc<Mutex<Ring>> = {
        static NEXT_THREAD: std::sync::atomic::AtomicU64 =
            std::sync::atomic::AtomicU64::new(0);
        let ring = Arc::new(Mutex::new(Ring {
            thread: NEXT_THREAD.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            events: Vec::with_capacity(RING_CAPACITY),
            head: 0,
            pushed: 0,
        }));
        rings().lock().unwrap().push(ring.clone());
        ring
    };
}

/// Whether `CAPES_TRACE` asked for the journal (`on`/`1`/`true`,
/// case-insensitive; read once per process).
#[inline]
pub fn trace_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        std::env::var("CAPES_TRACE")
            .map(|v| {
                let v = v.to_ascii_lowercase();
                v == "on" || v == "1" || v == "true"
            })
            .unwrap_or(false)
    })
}

/// Appends one event to the calling thread's ring.
pub(crate) fn push(name: &'static str, start: Instant, dur_ns: u64) {
    let start_ns = start.duration_since(epoch()).as_nanos() as u64;
    THREAD_RING.with(|ring| {
        ring.lock().unwrap().push(Event {
            name,
            start_ns,
            dur_ns,
        });
    });
}

/// The per-thread ring capacity (events kept before overwrite-oldest).
pub fn journal_capacity() -> usize {
    RING_CAPACITY
}

/// Dumps every thread's retained events as JSON lines sorted by start time:
/// `{"name":"...","thread":N,"start_ns":...,"dur_ns":...}`. Returns the
/// empty string when nothing was traced (e.g. `CAPES_TRACE` off).
pub fn dump_journal() -> String {
    let mut events: Vec<(u64, Event)> = Vec::new();
    for ring in rings().lock().unwrap().iter() {
        let ring = ring.lock().unwrap();
        for event in &ring.events {
            events.push((ring.thread, *event));
        }
    }
    events.sort_by_key(|(_, e)| e.start_ns);
    let mut out = String::new();
    for (thread, event) in events {
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"thread\":{},\"start_ns\":{},\"dur_ns\":{}}}\n",
            event.name, thread, event.start_ns, event.dur_ns
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest_beyond_capacity() {
        let mut ring = Ring {
            thread: 0,
            events: Vec::with_capacity(RING_CAPACITY),
            head: 0,
            pushed: 0,
        };
        for i in 0..(RING_CAPACITY as u64 + 10) {
            ring.push(Event {
                name: "x",
                start_ns: i,
                dur_ns: 1,
            });
        }
        assert_eq!(ring.events.len(), RING_CAPACITY);
        assert_eq!(ring.pushed, RING_CAPACITY as u64 + 10);
        let oldest = ring.events.iter().map(|e| e.start_ns).min().unwrap();
        assert_eq!(oldest, 10, "the first ten events were overwritten");
    }

    #[test]
    fn push_and_dump_round_trip() {
        push("test.journal", Instant::now(), 42);
        let dump = dump_journal();
        assert!(dump.contains("\"name\":\"test.journal\""), "{dump}");
        assert!(dump.contains("\"dur_ns\":42"));
        // Every line is self-contained JSON.
        for line in dump.lines().filter(|l| l.contains("test.journal")) {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }
}
