//! The three metric primitives: counter, gauge, log-linear histogram.
//!
//! Every handle is a cheap `Arc` clone over shared atomics, so a component
//! can own its metric (the single source of truth) while the global registry
//! holds another handle to the *same* storage for scraping — no
//! double-counting, no copy-back.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Monotonic event counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh, detached counter (link it with [`crate::Registry::publish_counter`]).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrites the value — for state restores, not for recording.
    pub fn store(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }
}

/// Last-write-wins instantaneous value (stored as `f64` bits).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A fresh, detached gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Sub-buckets per power-of-two octave: 32 → ≤ ~3% relative quantile error.
const SUB_BITS: u32 = 5;
const SUB_BUCKETS: usize = 1 << SUB_BITS;
/// Bucket count covering the full `u64` range: 32 exact low buckets plus
/// 32 sub-buckets for each of the 59 octaves with a most-significant bit
/// in 5..=63.
const N_BUCKETS: usize = SUB_BUCKETS * 60;

struct HistogramInner {
    buckets: Box<[AtomicU64]>,
    /// Sum of recorded values (nanoseconds at the span call sites).
    sum: AtomicU64,
    max: AtomicU64,
}

/// Lock-free log-linear latency histogram.
///
/// Values 0–31 land in exact buckets; larger values keep their top five
/// mantissa bits, so each power-of-two octave is split into 32 linear
/// sub-buckets. Recording is three relaxed atomic RMWs into storage
/// preallocated at registration — no locks, no allocation, no torn state
/// under concurrent writers (the total count is the sum of the buckets, so
/// it is conserved by construction).
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("max", &self.max())
            .finish()
    }
}

/// Bucket index of `value`.
#[inline]
fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        value as usize
    } else {
        let msb = 63 - value.leading_zeros();
        let sub = ((value >> (msb - SUB_BITS)) as usize) & (SUB_BUCKETS - 1);
        (msb as usize + 1 - SUB_BITS as usize) * SUB_BUCKETS + sub
    }
}

/// Midpoint of the value range bucket `index` covers.
fn bucket_midpoint(index: usize) -> f64 {
    if index < SUB_BUCKETS {
        index as f64
    } else {
        let octave = index / SUB_BUCKETS - 1;
        let sub = index % SUB_BUCKETS;
        let lo = ((SUB_BUCKETS + sub) as u64) << octave;
        let width = 1u64 << octave;
        lo as f64 + width as f64 / 2.0
    }
}

impl Histogram {
    /// A fresh, detached histogram (~15 KiB of preallocated buckets).
    pub fn new() -> Self {
        let buckets: Box<[AtomicU64]> = (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramInner {
            buckets,
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }

    /// Records one value (nanoseconds by convention at span call sites).
    #[inline]
    pub fn record(&self, value: u64) {
        let inner = &*self.0;
        inner.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
        inner.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration as nanoseconds.
    #[inline]
    pub fn record_duration(&self, duration: Duration) {
        self.record(duration.as_nanos() as u64);
    }

    /// Total number of recorded values (sum over the buckets, so concurrent
    /// recorders can never tear it).
    pub fn count(&self) -> u64 {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value (exact, via `fetch_max`).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded values, 0 when empty.
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the midpoint of the bucket the
    /// rank falls in — within ~3% of the true value. 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, bucket) in self.0.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_midpoint(index);
            }
        }
        self.max() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let view = c.clone();
        view.inc();
        assert_eq!(c.get(), 6, "clones share storage");
        c.store(42);
        assert_eq!(view.get(), 42);

        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(-3.25);
        assert_eq!(g.get(), -3.25);
    }

    #[test]
    fn low_values_are_exact() {
        let h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.sum(), (0..32).sum::<u64>());
        assert_eq!(h.max(), 31);
        // Every value below 32 has its own bucket, so quantiles are exact.
        assert_eq!(h.quantile(1.0 / 32.0), 0.0);
        assert_eq!(h.quantile(1.0), 31.0);
    }

    #[test]
    fn bucket_index_is_monotonic_and_in_range() {
        let mut last = 0usize;
        let mut v = 0u64;
        while v < u64::MAX / 3 {
            let idx = bucket_index(v);
            assert!(idx < N_BUCKETS, "index {idx} out of range for {v}");
            assert!(idx >= last, "index not monotonic at {v}");
            last = idx;
            v = v * 2 + 1;
        }
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
    }

    #[test]
    fn quantile_error_is_bounded() {
        let h = Histogram::new();
        // Log-spaced values over six orders of magnitude.
        let mut v = 100u64;
        let mut values = Vec::new();
        while v < 100_000_000 {
            h.record(v);
            values.push(v);
            v = v * 21 / 20;
        }
        for &(q, _) in &[(0.5, ()), (0.9, ()), (0.99, ())] {
            let rank = ((q * values.len() as f64).ceil() as usize).max(1) - 1;
            let exact = values[rank] as f64;
            let approx = h.quantile(q);
            let rel = (approx - exact).abs() / exact;
            assert!(rel < 0.04, "q={q}: exact {exact}, approx {approx}");
        }
        assert_eq!(h.max(), *values.last().unwrap());
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
    }
}
