//! Snapshot types (the `FleetReport.telemetry` section) and the
//! Prometheus-style text exposition behind the `/metrics` endpoint.

use serde::{Deserialize, Serialize};

/// Point-in-time value of one counter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Dotted metric name (`net.frames_in`).
    pub name: String,
    /// Counter value at snapshot time.
    pub value: u64,
}

/// Point-in-time value of one gauge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Dotted metric name (`net.ingress.depth`).
    pub name: String,
    /// Gauge value at snapshot time.
    pub value: f64,
}

/// Point-in-time summary of one latency histogram (nanosecond values).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Dotted metric name (`fleet.tick.total`).
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Mean recorded value.
    pub mean_ns: f64,
    /// Median (log-linear bucket midpoint, ≤ ~3% relative error).
    pub p50_ns: f64,
    /// 90th percentile.
    pub p90_ns: f64,
    /// 99th percentile.
    pub p99_ns: f64,
    /// Exact largest recorded value.
    pub max_ns: u64,
}

/// Every metric in a registry at one instant — embedded in
/// `FleetReport.telemetry` so non-socket transports get the same numbers a
/// live `/metrics` scrape would show.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl TelemetrySnapshot {
    /// The histogram snapshot named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// The counter value named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The gauge value named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Renders the snapshot as Prometheus text-format exposition: dots in
    /// names become underscores, counters get a `_total` suffix, histograms
    /// expose `{quantile="…"}` series plus `_count`, `_sum` and `_max`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            let name = mangle(&c.name);
            out.push_str(&format!("# TYPE {name}_total counter\n"));
            out.push_str(&format!("{name}_total {}\n", c.value));
        }
        for g in &self.gauges {
            let name = mangle(&g.name);
            out.push_str(&format!("# TYPE {name} gauge\n"));
            out.push_str(&format!("{name} {}\n", fmt_f64(g.value)));
        }
        for h in &self.histograms {
            let name = mangle(&h.name);
            out.push_str(&format!("# TYPE {name} summary\n"));
            for (q, v) in [("0.5", h.p50_ns), ("0.9", h.p90_ns), ("0.99", h.p99_ns)] {
                out.push_str(&format!("{name}{{quantile=\"{q}\"}} {}\n", fmt_f64(v)));
            }
            out.push_str(&format!(
                "{name}_sum {}\n",
                fmt_f64(h.mean_ns * h.count as f64)
            ));
            out.push_str(&format!("{name}_count {}\n", h.count));
            out.push_str(&format!("{name}_max {}\n", h.max_ns));
        }
        out
    }
}

fn mangle(name: &str) -> String {
    name.replace(['.', '-'], "_")
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

/// Snapshots the [global registry](crate::global) and renders it as
/// Prometheus text — the body of a `/metrics` response, also usable
/// directly from any binary.
pub fn dump_metrics() -> String {
    crate::global().snapshot().render_prometheus()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: vec![CounterSnapshot {
                name: "net.frames_in".into(),
                value: 460,
            }],
            gauges: vec![GaugeSnapshot {
                name: "net.ingress.depth".into(),
                value: 3.0,
            }],
            histograms: vec![HistogramSnapshot {
                name: "fleet.tick.total".into(),
                count: 46,
                mean_ns: 1_500_000.0,
                p50_ns: 1_400_000.0,
                p90_ns: 2_000_000.0,
                p99_ns: 2_500_000.0,
                max_ns: 3_000_000,
            }],
        }
    }

    #[test]
    fn prometheus_rendering_mangles_and_labels() {
        let text = sample().render_prometheus();
        assert!(text.contains("net_frames_in_total 460"), "{text}");
        assert!(text.contains("net_ingress_depth 3"), "{text}");
        assert!(text.contains("fleet_tick_total{quantile=\"0.5\"} 1400000"));
        assert!(text.contains("fleet_tick_total{quantile=\"0.99\"} 2500000"));
        assert!(text.contains("fleet_tick_total_count 46"));
        assert!(text.contains("fleet_tick_total_max 3000000"));
        // No metric *name* keeps a dot (quantile label values may).
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split(['{', ' ']).next().unwrap();
            assert!(!name.contains('.'), "unmangled name in {line}");
        }
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snap = sample();
        let json = serde_json::to_string(&snap).unwrap();
        let back: TelemetrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.histogram("fleet.tick.total").unwrap().count, 46);
        assert_eq!(back.counter("net.frames_in"), Some(460));
        assert_eq!(back.gauge("net.ingress.depth"), Some(3.0));
    }
}
