//! The metrics registry: name → handle interning, plus the global instance
//! every `span!` call site and scrape endpoint reads.

use crate::metric::{Counter, Gauge, Histogram};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

#[derive(Default)]
struct Inner {
    counters: Vec<(String, Counter)>,
    gauges: Vec<(String, Gauge)>,
    histograms: Vec<(String, Histogram)>,
}

impl Inner {
    fn find<T: Clone>(list: &[(String, T)], name: &str) -> Option<T> {
        list.iter().find(|(n, _)| n == name).map(|(_, m)| m.clone())
    }

    fn upsert<T: Clone>(list: &mut Vec<(String, T)>, name: &str, metric: T) {
        match list.iter_mut().find(|(n, _)| n == name) {
            Some((_, slot)) => *slot = metric,
            None => list.push((name.to_string(), metric)),
        }
    }
}

/// A set of named metrics. Registration (the only mutex) happens once per
/// name; the handles it returns record through relaxed atomics only.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry (tests; production code uses [`global`]).
    pub fn new() -> Self {
        Registry::default()
    }

    /// Interns (or retrieves) the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().unwrap();
        if let Some(c) = Inner::find(&inner.counters, name) {
            return c;
        }
        let c = Counter::new();
        inner.counters.push((name.to_string(), c.clone()));
        c
    }

    /// Interns (or retrieves) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().unwrap();
        if let Some(g) = Inner::find(&inner.gauges, name) {
            return g;
        }
        let g = Gauge::new();
        inner.gauges.push((name.to_string(), g.clone()));
        g
    }

    /// Interns (or retrieves) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.lock().unwrap();
        if let Some(h) = Inner::find(&inner.histograms, name) {
            return h;
        }
        let h = Histogram::new();
        inner.histograms.push((name.to_string(), h.clone()));
        h
    }

    /// Links a component-owned counter under `name` (latest publisher wins,
    /// so a fresh fleet replaces a finished one's handles). The component's
    /// atomic stays the single source of truth; the registry just scrapes
    /// through another handle to it.
    pub fn publish_counter(&self, name: &str, counter: &Counter) {
        let mut inner = self.inner.lock().unwrap();
        Inner::upsert(&mut inner.counters, name, counter.clone());
    }

    /// Links a component-owned gauge under `name` (latest wins).
    pub fn publish_gauge(&self, name: &str, gauge: &Gauge) {
        let mut inner = self.inner.lock().unwrap();
        Inner::upsert(&mut inner.gauges, name, gauge.clone());
    }

    /// Links a component-owned histogram under `name` (latest wins).
    pub fn publish_histogram(&self, name: &str, histogram: &Histogram) {
        let mut inner = self.inner.lock().unwrap();
        Inner::upsert(&mut inner.histograms, name, histogram.clone());
    }

    /// Snapshot of every metric, sorted by name (deterministic JSON).
    pub fn snapshot(&self) -> crate::TelemetrySnapshot {
        let inner = self.inner.lock().unwrap();
        let mut counters: Vec<crate::CounterSnapshot> = inner
            .counters
            .iter()
            .map(|(name, c)| crate::CounterSnapshot {
                name: name.clone(),
                value: c.get(),
            })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        let mut gauges: Vec<crate::GaugeSnapshot> = inner
            .gauges
            .iter()
            .map(|(name, g)| crate::GaugeSnapshot {
                name: name.clone(),
                value: g.get(),
            })
            .collect();
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        let mut histograms: Vec<crate::HistogramSnapshot> = inner
            .histograms
            .iter()
            .map(|(name, h)| crate::HistogramSnapshot {
                name: name.clone(),
                count: h.count(),
                mean_ns: h.mean(),
                p50_ns: h.quantile(0.5),
                p90_ns: h.quantile(0.9),
                p99_ns: h.quantile(0.99),
                max_ns: h.max(),
            })
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        crate::TelemetrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// The process-wide registry (what [`crate::span!`] and the `/metrics`
/// endpoint use).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Master recording switch. On by default; benches flip it off to measure
/// the uninstrumented baseline in-process.
static RECORDING: AtomicBool = AtomicBool::new(true);

/// Whether spans record (one relaxed load on every span entry).
#[inline]
pub fn recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Enables or disables span recording process-wide.
pub fn set_recording(enabled: bool) {
    RECORDING.store(enabled, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_returns_the_same_storage() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.inc();
        assert_eq!(reg.counter("x").get(), 2);
        assert_eq!(reg.snapshot().counters.len(), 1);
    }

    #[test]
    fn publish_links_external_storage_latest_wins() {
        let reg = Registry::new();
        let first = Counter::new();
        first.add(7);
        reg.publish_counter("daemon.reports_rejected", &first);
        assert_eq!(reg.counter("daemon.reports_rejected").get(), 7);
        let second = Counter::new();
        second.add(1);
        reg.publish_counter("daemon.reports_rejected", &second);
        assert_eq!(reg.counter("daemon.reports_rejected").get(), 1);
        // Writes through the interned handle hit the publisher's atomic.
        reg.counter("daemon.reports_rejected").inc();
        assert_eq!(second.get(), 2);
        assert_eq!(first.get(), 7, "replaced handle untouched");
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = Registry::new();
        reg.counter("b.count").inc();
        reg.counter("a.count").add(3);
        reg.gauge("z.depth").set(4.5);
        let h = reg.histogram("m.latency");
        h.record(100);
        h.record(200);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counters
                .iter()
                .map(|c| c.name.as_str())
                .collect::<Vec<_>>(),
            ["a.count", "b.count"]
        );
        assert_eq!(snap.counters[0].value, 3);
        assert_eq!(snap.gauges[0].value, 4.5);
        assert_eq!(snap.histograms[0].count, 2);
        assert_eq!(snap.histograms[0].max_ns, 200);
        assert!(snap.histograms[0].p50_ns > 0.0);
    }
}
