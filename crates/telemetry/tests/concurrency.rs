//! Concurrency guarantees of the lock-free histogram: eight threads
//! hammering one histogram lose no counts and tear no buckets.

use capes_telemetry::{global, Histogram};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const THREADS: usize = 8;
const RECORDS_PER_THREAD: u64 = 200_000;

#[test]
fn eight_threads_hammering_one_histogram_conserve_every_count() {
    let hist = Histogram::new();
    let total_sum = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let hist = hist.clone();
            let total_sum = total_sum.clone();
            scope.spawn(move || {
                // Deterministic per-thread value stream spanning many
                // octaves, so threads collide on low buckets and diverge on
                // high ones.
                let mut local_sum = 0u64;
                let mut x = (t as u64 + 1) * 2_654_435_761;
                for _ in 0..RECORDS_PER_THREAD {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let value = x % (1 << (x % 40));
                    hist.record(value);
                    local_sum += value;
                }
                total_sum.fetch_add(local_sum, Ordering::Relaxed);
            });
        }
    });
    // Total count conserved: the per-bucket sum equals the records issued.
    assert_eq!(hist.count(), THREADS as u64 * RECORDS_PER_THREAD);
    // No torn sums either: the histogram's running sum matches the values
    // the threads actually recorded.
    assert_eq!(hist.sum(), total_sum.load(Ordering::Relaxed));
    // Quantiles stay ordered and bounded by the exact max.
    let (p50, p90, p99) = (hist.quantile(0.5), hist.quantile(0.9), hist.quantile(0.99));
    assert!(p50 <= p90 && p90 <= p99);
    assert!(p99 <= hist.max() as f64 * 1.04);
}

#[test]
fn concurrent_registration_of_one_name_interns_one_histogram() {
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for _ in 0..1000 {
                    global().histogram("test.concurrent_intern").record(7);
                }
            });
        }
    });
    assert_eq!(
        global().histogram("test.concurrent_intern").count(),
        THREADS as u64 * 1000,
        "every thread recorded into the same storage"
    );
}
