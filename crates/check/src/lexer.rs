//! A small comment- and string-aware Rust lexer.
//!
//! The linter's rules are token-level: they never need a full parse, but they
//! must never be fooled by the word `unsafe` inside a string literal or a
//! `.unwrap()` inside a doc comment. This lexer produces exactly enough
//! structure for that: identifiers, literals, single-char punctuation, and
//! comments (kept as tokens — the `SAFETY:` rule and the suppression syntax
//! live in them), each tagged with its source line range and whether it sits
//! inside an attribute.

/// Token class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`, `c"…"`). The
    /// token text is the *inner* content, escapes unprocessed.
    Str,
    /// Character or byte-character literal.
    Char,
    Lifetime,
    Num,
    /// One punctuation character.
    Punct(char),
    /// Line or block comment, text included (`//` / `/*` markers kept).
    Comment,
}

/// One token with its source position.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
    /// 1-based line the token ends on (differs for block comments/strings).
    pub end_line: u32,
    /// `true` when the token is part of an `#[…]` / `#![…]` attribute.
    pub attr: bool,
}

/// A lexed file: the token stream plus per-line occupancy used by the
/// "comment immediately above" checks.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Tok>,
    /// Number of lines in the file.
    pub line_count: u32,
}

impl Lexed {
    /// `true` if `line` carries any non-comment, non-attribute token.
    pub fn line_has_code(&self, line: u32) -> bool {
        self.tokens
            .iter()
            .any(|t| t.kind != TokKind::Comment && !t.attr && t.line <= line && line <= t.end_line)
    }

    /// `true` if `line` carries an attribute or comment token (and possibly
    /// nothing else).
    pub fn line_has_comment_or_attr(&self, line: u32) -> bool {
        self.tokens
            .iter()
            .any(|t| (t.kind == TokKind::Comment || t.attr) && t.line <= line && line <= t.end_line)
    }

    /// Comments whose span covers `line`.
    pub fn comments_on(&self, line: u32) -> impl Iterator<Item = &Tok> {
        self.tokens
            .iter()
            .filter(move |t| t.kind == TokKind::Comment && t.line <= line && line <= t.end_line)
    }

    /// Index of the next non-comment token at or after `i`.
    pub fn next_code(&self, mut i: usize) -> Option<usize> {
        while i < self.tokens.len() {
            if self.tokens[i].kind != TokKind::Comment {
                return Some(i);
            }
            i += 1;
        }
        None
    }

    /// Index of the previous non-comment token strictly before `i`.
    pub fn prev_code(&self, i: usize) -> Option<usize> {
        (0..i)
            .rev()
            .find(|&j| self.tokens[j].kind != TokKind::Comment)
    }

    /// `true` if the non-comment token at `i` is the identifier `name`.
    pub fn is_ident(&self, i: usize, name: &str) -> bool {
        let t = &self.tokens[i];
        t.kind == TokKind::Ident && t.text == name
    }

    /// `true` if the token at `i` is the punctuation `c`.
    pub fn is_punct(&self, i: usize, c: char) -> bool {
        self.tokens[i].kind == TokKind::Punct(c)
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl Cursor<'_> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let byte = self.src.get(self.pos).copied();
        if let Some(b) = byte {
            self.pos += 1;
            if b == b'\n' {
                self.line += 1;
            }
        }
        byte
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens. Unterminated constructs are closed at EOF
/// (the linter must degrade gracefully, never panic, on odd input).
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut tokens: Vec<Tok> = Vec::new();
    while let Some(b) = cur.peek(0) {
        let start_line = cur.line;
        let start = cur.pos;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek(1) == Some(b'/') => {
                while let Some(c) = cur.peek(0) {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                }
                push(
                    &mut tokens,
                    TokKind::Comment,
                    src,
                    start,
                    cur.pos,
                    start_line,
                    cur.line,
                );
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some(b'*'), Some(b'/')) => {
                            cur.bump();
                            cur.bump();
                            depth -= 1;
                        }
                        (Some(b'/'), Some(b'*')) => {
                            cur.bump();
                            cur.bump();
                            depth += 1;
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                push(
                    &mut tokens,
                    TokKind::Comment,
                    src,
                    start,
                    cur.pos,
                    start_line,
                    cur.line,
                );
            }
            b'"' => {
                lex_quoted_string(&mut cur);
                push_str(
                    &mut tokens,
                    src,
                    start + 1,
                    cur.pos.saturating_sub(1),
                    start_line,
                    cur.line,
                );
            }
            b'r' | b'b' | b'c' if string_prefix_len(&cur).is_some() => {
                let (prefix, hashes) = string_prefix_len(&cur).expect("checked above");
                for _ in 0..prefix + hashes + 1 {
                    cur.bump();
                }
                let inner_start = cur.pos;
                if hashes > 0 || prefix_is_raw(&cur, start, prefix) {
                    // Raw string: ends at `"` followed by `hashes` hashes.
                    loop {
                        match cur.peek(0) {
                            None => break,
                            Some(b'"') if raw_terminator(&cur, hashes) => {
                                let inner_end = cur.pos;
                                cur.bump();
                                for _ in 0..hashes {
                                    cur.bump();
                                }
                                push_str(
                                    &mut tokens,
                                    src,
                                    inner_start,
                                    inner_end,
                                    start_line,
                                    cur.line,
                                );
                                break;
                            }
                            Some(_) => {
                                cur.bump();
                            }
                        }
                    }
                    if cur.peek(0).is_none() && tokens.last().map(|t| t.kind) != Some(TokKind::Str)
                    {
                        push_str(&mut tokens, src, inner_start, cur.pos, start_line, cur.line);
                    }
                } else {
                    // `b"…"` / `c"…"`: ordinary escape rules.
                    lex_quoted_string(&mut cur);
                    push_str(
                        &mut tokens,
                        src,
                        inner_start,
                        cur.pos.saturating_sub(1),
                        start_line,
                        cur.line,
                    );
                }
            }
            b'\'' => {
                cur.bump();
                match cur.peek(0) {
                    Some(c) if is_ident_start(c) && c != b'\\' => {
                        // Lifetime unless a closing quote follows one ident
                        // char (`'a'` vs `'a`).
                        let mut len = 0usize;
                        while cur.peek(len).map(is_ident_continue) == Some(true) {
                            len += 1;
                        }
                        if cur.peek(len) == Some(b'\'') {
                            for _ in 0..=len {
                                cur.bump();
                            }
                            push(
                                &mut tokens,
                                TokKind::Char,
                                src,
                                start,
                                cur.pos,
                                start_line,
                                cur.line,
                            );
                        } else {
                            for _ in 0..len {
                                cur.bump();
                            }
                            push(
                                &mut tokens,
                                TokKind::Lifetime,
                                src,
                                start,
                                cur.pos,
                                start_line,
                                cur.line,
                            );
                        }
                    }
                    Some(_) => {
                        // Escaped or punctuation char literal `'\n'`, `'('`.
                        if cur.peek(0) == Some(b'\\') {
                            cur.bump();
                        }
                        cur.bump();
                        if cur.peek(0) == Some(b'\'') {
                            cur.bump();
                        }
                        push(
                            &mut tokens,
                            TokKind::Char,
                            src,
                            start,
                            cur.pos,
                            start_line,
                            cur.line,
                        );
                    }
                    None => {}
                }
            }
            b'0'..=b'9' => {
                if b == b'0' && matches!(cur.peek(1), Some(b'x' | b'o' | b'b')) {
                    cur.bump();
                    cur.bump();
                    while cur.peek(0).map(|c| c.is_ascii_alphanumeric() || c == b'_') == Some(true)
                    {
                        cur.bump();
                    }
                } else {
                    while cur.peek(0).map(|c| c.is_ascii_digit() || c == b'_') == Some(true) {
                        cur.bump();
                    }
                    if cur.peek(0) == Some(b'.')
                        && cur.peek(1).map(|c| c.is_ascii_digit()) == Some(true)
                    {
                        cur.bump();
                        while cur.peek(0).map(|c| c.is_ascii_digit() || c == b'_') == Some(true) {
                            cur.bump();
                        }
                    }
                    if matches!(cur.peek(0), Some(b'e' | b'E'))
                        && (cur.peek(1).map(|c| c.is_ascii_digit()) == Some(true)
                            || (matches!(cur.peek(1), Some(b'+' | b'-'))
                                && cur.peek(2).map(|c| c.is_ascii_digit()) == Some(true)))
                    {
                        cur.bump();
                        if matches!(cur.peek(0), Some(b'+' | b'-')) {
                            cur.bump();
                        }
                        while cur.peek(0).map(|c| c.is_ascii_digit() || c == b'_') == Some(true) {
                            cur.bump();
                        }
                    }
                    // Type suffix (`1.0f64`, `32usize`).
                    while cur.peek(0).map(is_ident_continue) == Some(true) {
                        cur.bump();
                    }
                }
                push(
                    &mut tokens,
                    TokKind::Num,
                    src,
                    start,
                    cur.pos,
                    start_line,
                    cur.line,
                );
            }
            _ if is_ident_start(b) => {
                cur.bump();
                // Raw identifier `r#ident` (the raw-string case was handled
                // above, so a `#` here is always an identifier).
                if b == b'r' && cur.peek(0) == Some(b'#') {
                    cur.bump();
                }
                while cur.peek(0).map(is_ident_continue) == Some(true) {
                    cur.bump();
                }
                push(
                    &mut tokens,
                    TokKind::Ident,
                    src,
                    start,
                    cur.pos,
                    start_line,
                    cur.line,
                );
            }
            _ => {
                cur.bump();
                push(
                    &mut tokens,
                    TokKind::Punct(b as char),
                    src,
                    start,
                    cur.pos,
                    start_line,
                    cur.line,
                );
            }
        }
    }
    let line_count = cur.line;
    let mut lexed = Lexed { tokens, line_count };
    mark_attributes(&mut lexed);
    lexed
}

/// Consumes a `"…"` body starting at the opening quote; handles escapes.
fn lex_quoted_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(c) = cur.peek(0) {
        match c {
            b'\\' => {
                cur.bump();
                cur.bump();
            }
            b'"' => {
                cur.bump();
                return;
            }
            _ => {
                cur.bump();
            }
        }
    }
}

/// If the cursor sits on a string prefix (`r"`, `r#"`, `b"`, `br#"`, `c"`,
/// `cr"`, …) returns `(prefix_letters, hash_count)`.
fn string_prefix_len(cur: &Cursor<'_>) -> Option<(usize, usize)> {
    let mut prefix = 0usize;
    while prefix < 2 && matches!(cur.peek(prefix), Some(b'r' | b'b' | b'c')) {
        prefix += 1;
    }
    if prefix == 0 {
        return None;
    }
    let mut hashes = 0usize;
    while cur.peek(prefix + hashes) == Some(b'#') {
        hashes += 1;
    }
    if cur.peek(prefix + hashes) == Some(b'"') {
        // `r#ident` has hashes but no quote and lands here only with a quote.
        Some((prefix, hashes))
    } else {
        None
    }
}

fn prefix_is_raw(cur: &Cursor<'_>, start: usize, prefix: usize) -> bool {
    cur.src[start..start + prefix].contains(&b'r')
}

/// At a `"` inside a raw string: is it followed by `hashes` `#`s?
fn raw_terminator(cur: &Cursor<'_>, hashes: usize) -> bool {
    (1..=hashes).all(|k| cur.peek(k) == Some(b'#'))
}

fn push(
    tokens: &mut Vec<Tok>,
    kind: TokKind,
    src: &str,
    start: usize,
    end: usize,
    line: u32,
    end_line: u32,
) {
    tokens.push(Tok {
        kind,
        text: src[start..end].to_string(),
        line,
        end_line,
        attr: false,
    });
}

fn push_str(tokens: &mut Vec<Tok>, src: &str, start: usize, end: usize, line: u32, end_line: u32) {
    let end = end.max(start);
    tokens.push(Tok {
        kind: TokKind::Str,
        text: src[start..end].to_string(),
        line,
        end_line,
        attr: false,
    });
}

/// Tags every token belonging to an `#[…]` / `#![…]` attribute.
fn mark_attributes(lexed: &mut Lexed) {
    let mut i = 0;
    while i < lexed.tokens.len() {
        if lexed.tokens[i].kind == TokKind::Punct('#') {
            let mut j = i + 1;
            while j < lexed.tokens.len() && lexed.tokens[j].kind == TokKind::Comment {
                j += 1;
            }
            if j < lexed.tokens.len() && lexed.tokens[j].kind == TokKind::Punct('!') {
                j += 1;
                while j < lexed.tokens.len() && lexed.tokens[j].kind == TokKind::Comment {
                    j += 1;
                }
            }
            if j < lexed.tokens.len() && lexed.tokens[j].kind == TokKind::Punct('[') {
                let mut depth = 0usize;
                let mut k = j;
                while k < lexed.tokens.len() {
                    match lexed.tokens[k].kind {
                        TokKind::Punct('[') => depth += 1,
                        TokKind::Punct(']') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                let end = k.min(lexed.tokens.len() - 1);
                for t in &mut lexed.tokens[i..=end] {
                    if t.kind != TokKind::Comment {
                        t.attr = true;
                    }
                }
                i = k + 1;
                continue;
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_strings_and_idents_are_separated() {
        let lexed = lex("let x = \"unsafe // not code\"; // unsafe in comment\nunsafe {}");
        let unsafe_idents: Vec<&Tok> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident && t.text == "unsafe")
            .collect();
        assert_eq!(unsafe_idents.len(), 1);
        assert_eq!(unsafe_idents[0].line, 2);
        let strings: Vec<&Tok> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .collect();
        assert_eq!(strings[0].text, "unsafe // not code");
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let lexed = lex("let r#fn = r#\"has \" quote\"#; let b = br##\"x\"##;");
        let strings: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strings, ["has \" quote", "x"]);
        assert!(lexed.tokens.iter().any(|t| t.text == "r#fn"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokKind::Char)
                .count(),
            1
        );
    }

    #[test]
    fn attributes_are_tagged() {
        let lexed = lex("#[cfg(test)]\nmod tests {}\n#![deny(unsafe_code)]");
        let attr_idents: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.attr && t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(attr_idents.contains(&"cfg"));
        assert!(attr_idents.contains(&"deny"));
        assert!(!lexed.tokens.iter().any(|t| t.text == "mod" && t.attr));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let lexed = lex("/* a /* nested */ still */\ncode();");
        assert_eq!(lexed.tokens[0].kind, TokKind::Comment);
        assert_eq!(lexed.tokens[0].end_line, 1);
        assert!(lexed.line_has_code(2));
        assert!(!lexed.line_has_code(1));
    }

    #[test]
    fn numbers_with_ranges_do_not_eat_dots() {
        let lexed = lex("for i in 0..10 { a[i] = 1.5e-3; }");
        let nums: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, ["0", "10", "1.5e-3"]);
    }
}
