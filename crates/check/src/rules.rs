//! The invariant rules and their token-level matchers.
//!
//! | rule id           | invariant                                                        |
//! |-------------------|------------------------------------------------------------------|
//! | `safety-comment`  | every `unsafe` block/fn/impl has a `// SAFETY:` comment above it |
//! | `hot-path-alloc`  | no allocating calls in modules/fns declared hot in `check.toml`  |
//! | `boundary-panic`  | no unwrap/expect/panic!/bare indexing in hardened boundary code  |
//! | `env-registry`    | every `CAPES_*` literal appears in the env knob registry         |
//! | `metric-registry` | every metric/span name literal appears in the name registry      |
//! | `bad-suppression` | suppression comments name a real rule and carry a reason         |
//!
//! Any finding except `bad-suppression` can be waived inline:
//! `// capes-check: allow(<rule>) -- <reason>` on the offending line or the
//! line above it.

use crate::config::Config;
use crate::lexer::{lex, Lexed, TokKind};
use std::collections::HashSet;

/// Stable rule ids, in reporting order.
pub const RULE_IDS: &[&str] = &[
    "safety-comment",
    "hot-path-alloc",
    "boundary-panic",
    "env-registry",
    "metric-registry",
    "bad-suppression",
];

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Interned name sets lexed out of the registry modules named in `check.toml`.
#[derive(Debug, Default, Clone)]
pub struct Registries {
    pub env: HashSet<String>,
    pub metrics: HashSet<String>,
}

/// Collects every string literal in `src` (used on registry modules).
pub fn literal_set(src: &str) -> HashSet<String> {
    lex(src)
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Str)
        .map(|t| t.text.clone())
        .collect()
}

struct Suppression {
    line: u32,
    rules: Vec<String>,
}

/// Lints one file; `rel_path` is workspace-relative with `/` separators.
pub fn lint_file(
    rel_path: &str,
    src: &str,
    config: &Config,
    registries: &Registries,
) -> Vec<Finding> {
    let lexed = lex(src);
    let test_regions = test_mod_regions(&lexed);
    let is_test_file = rel_path.contains("/tests/") || rel_path.contains("/benches/");
    let is_registry_file = config.env_registry.iter().any(|p| p == rel_path)
        || config.metric_registry.iter().any(|p| p == rel_path);

    let mut findings: Vec<Finding> = Vec::new();
    let suppressions = collect_suppressions(rel_path, &lexed, &mut findings);

    let in_tests =
        |i: usize| is_test_file || test_regions.iter().any(|&(lo, hi)| lo <= i && i <= hi);

    check_safety_comments(rel_path, &lexed, &mut findings);
    check_hot_paths(
        rel_path,
        &lexed,
        config,
        &test_regions,
        is_test_file,
        &mut findings,
    );
    if config.boundary.iter().any(|p| path_matches(rel_path, p)) {
        check_boundary(rel_path, &lexed, &in_tests, &mut findings);
    }
    if !is_registry_file {
        check_env_literals(
            rel_path,
            &lexed,
            config,
            registries,
            &in_tests,
            &mut findings,
        );
        check_metric_literals(
            rel_path,
            &lexed,
            config,
            registries,
            &in_tests,
            &mut findings,
        );
    }

    findings.retain(|f| {
        f.rule == "bad-suppression"
            || !suppressions.iter().any(|s| {
                (f.line == s.line || f.line == s.line + 1) && s.rules.iter().any(|r| r == f.rule)
            })
    });
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// `prefix` either names the file exactly or a directory prefix of it.
fn path_matches(rel_path: &str, prefix: &str) -> bool {
    rel_path == prefix
        || (rel_path.starts_with(prefix) && rel_path.as_bytes().get(prefix.len()) == Some(&b'/'))
}

/// Parses `// capes-check: allow(rule, …) -- reason` comments; malformed ones
/// become `bad-suppression` findings.
fn collect_suppressions(
    rel_path: &str,
    lexed: &Lexed,
    findings: &mut Vec<Finding>,
) -> Vec<Suppression> {
    let mut suppressions = Vec::new();
    for tok in lexed.tokens.iter().filter(|t| t.kind == TokKind::Comment) {
        // Only plain `//` comments carry directives; doc comments (`///`,
        // `//!`) and block comments merely *talk about* the syntax.
        let Some(body) = tok.text.strip_prefix("//") else {
            continue;
        };
        if body.starts_with('/') || body.starts_with('!') {
            continue;
        }
        let Some(rest) = body.trim_start().strip_prefix("capes-check:") else {
            continue;
        };
        let rest = rest.trim_start();
        let bad = |message: String| Finding {
            file: rel_path.to_string(),
            line: tok.line,
            rule: "bad-suppression",
            message,
        };
        let Some(args) = rest.strip_prefix("allow(").and_then(|r| r.split_once(')')) else {
            findings.push(bad(
                "suppression must be `capes-check: allow(<rule>) -- <reason>`".to_string(),
            ));
            continue;
        };
        let (rule_list, tail) = args;
        let rules: Vec<String> = rule_list
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let mut ok = !rules.is_empty();
        for rule in &rules {
            if !RULE_IDS.contains(&rule.as_str()) || rule == "bad-suppression" {
                findings.push(bad(format!("suppression names unknown rule `{rule}`")));
                ok = false;
            }
        }
        let reason = tail.split_once("--").map(|(_, r)| r.trim()).unwrap_or("");
        if reason.is_empty() {
            findings.push(bad(
                "suppression is missing its `-- <reason>` justification".to_string(),
            ));
            ok = false;
        }
        if ok {
            suppressions.push(Suppression {
                line: tok.line,
                rules,
            });
        }
    }
    suppressions
}

/// Token index ranges (inclusive) of `#[cfg(test)] mod … { … }` bodies.
fn test_mod_regions(lexed: &Lexed) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || toks[i].text != "mod" || toks[i].attr {
            continue;
        }
        // Walk back over the attribute tokens directly before `mod`, looking
        // for `cfg ( test )`.
        let mut has_cfg_test = false;
        let mut j = i;
        let mut attr_window: Vec<&str> = Vec::new();
        while j > 0 {
            j -= 1;
            let t = &toks[j];
            if t.kind == TokKind::Comment {
                continue;
            }
            if !t.attr {
                break;
            }
            attr_window.push(t.text.as_str());
        }
        for w in attr_window.windows(3) {
            // Reversed order: `) test ( cfg` reads as windows of the
            // backwards walk.
            if w[0] == "test" && w[2] == "cfg" {
                has_cfg_test = true;
            }
        }
        if !has_cfg_test {
            continue;
        }
        if let Some((open, close)) = brace_block(lexed, i) {
            regions.push((open, close));
        }
    }
    regions
}

/// Finds the `{ … }` block after token `from`: returns (open, close) indices.
fn brace_block(lexed: &Lexed, from: usize) -> Option<(usize, usize)> {
    let toks = &lexed.tokens;
    let mut i = from;
    while i < toks.len() && toks[i].kind != TokKind::Punct('{') {
        // A `;` first means there is no block (`mod name;`, fn declarations).
        if toks[i].kind == TokKind::Punct(';') {
            return None;
        }
        i += 1;
    }
    if i >= toks.len() {
        return None;
    }
    let open = i;
    let mut depth = 0usize;
    while i < toks.len() {
        match toks[i].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, i));
                }
            }
            _ => {}
        }
        i += 1;
    }
    Some((open, toks.len() - 1))
}

/// Rule `safety-comment`.
fn check_safety_comments(rel_path: &str, lexed: &Lexed, findings: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || toks[i].text != "unsafe" || toks[i].attr {
            continue;
        }
        // `unsafe fn(…)` / `unsafe extern "C" fn(…)` in *type* position is a
        // signature, not an unsafe operation.
        if let Some(mut j) = lexed.next_code(i + 1) {
            if lexed.is_ident(j, "extern") {
                if let Some(k) = lexed.next_code(j + 1) {
                    j = if toks[k].kind == TokKind::Str {
                        lexed.next_code(k + 1).unwrap_or(k)
                    } else {
                        k
                    };
                }
            }
            if lexed.is_ident(j, "fn") {
                if let Some(k) = lexed.next_code(j + 1) {
                    if lexed.is_punct(k, '(') {
                        continue;
                    }
                }
            }
        }
        if !has_safety_comment(lexed, toks[i].line) {
            findings.push(Finding {
                file: rel_path.to_string(),
                line: toks[i].line,
                rule: "safety-comment",
                message: "`unsafe` without a `// SAFETY:` comment immediately above".to_string(),
            });
        }
    }
}

/// A `SAFETY:` (or rustdoc `# Safety`) comment on the same line or on a run
/// of comment/attribute-only lines directly above.
fn has_safety_comment(lexed: &Lexed, line: u32) -> bool {
    let marker = |t: &crate::lexer::Tok| t.text.contains("SAFETY:") || t.text.contains("# Safety");
    if lexed.comments_on(line).any(marker) {
        return true;
    }
    let mut l = line.saturating_sub(1);
    while l >= 1 {
        if lexed.line_has_code(l) {
            return false;
        }
        if lexed.comments_on(l).any(marker) {
            return true;
        }
        if !lexed.line_has_comment_or_attr(l) {
            // Blank line: the comment is no longer "immediately" above.
            return false;
        }
        l -= 1;
    }
    false
}

/// Rule `hot-path-alloc`.
fn check_hot_paths(
    rel_path: &str,
    lexed: &Lexed,
    config: &Config,
    test_regions: &[(usize, usize)],
    is_test_file: bool,
    findings: &mut Vec<Finding>,
) {
    if is_test_file {
        return;
    }
    let Some(hot) = config.hot_paths.iter().find(|h| h.file == rel_path) else {
        return;
    };
    let regions: Vec<(usize, usize)> = if hot.fns.is_empty() {
        vec![(0, lexed.tokens.len().saturating_sub(1))]
    } else {
        fn_body_regions(lexed, &hot.fns)
    };
    let in_hot = |i: usize| {
        regions.iter().any(|&(lo, hi)| lo <= i && i <= hi)
            && !test_regions.iter().any(|&(lo, hi)| lo <= i && i <= hi)
    };
    let toks = &lexed.tokens;
    const ALLOC_METHODS: &[&str] = &["clone", "to_vec", "to_string", "to_owned", "collect"];
    const ALLOC_MACROS: &[&str] = &["vec", "format"];
    const ALLOC_TYPES: &[&str] = &["Vec", "VecDeque", "Box", "String", "BTreeMap", "HashMap"];
    const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from"];
    for i in 0..toks.len() {
        if !in_hot(i) || toks[i].attr || toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = toks[i].text.as_str();
        let report = |what: String, findings: &mut Vec<Finding>| {
            findings.push(Finding {
                file: rel_path.to_string(),
                line: toks[i].line,
                rule: "hot-path-alloc",
                message: format!("allocating call `{what}` in a module declared hot-path"),
            });
        };
        // `.method(`
        if ALLOC_METHODS.contains(&name) {
            let prev_dot = lexed.prev_code(i).is_some_and(|p| lexed.is_punct(p, '.'));
            let next_paren = lexed
                .next_code(i + 1)
                .is_some_and(|n| lexed.is_punct(n, '('));
            if prev_dot && next_paren {
                report(format!(".{name}()"), findings);
            }
            continue;
        }
        // `vec!` / `format!`
        if ALLOC_MACROS.contains(&name)
            && lexed
                .next_code(i + 1)
                .is_some_and(|n| lexed.is_punct(n, '!'))
        {
            report(format!("{name}!"), findings);
            continue;
        }
        // `Vec::new(` and friends
        if ALLOC_TYPES.contains(&name) {
            if let Some(c1) = lexed.next_code(i + 1) {
                if lexed.is_punct(c1, ':') {
                    if let Some(c2) = lexed.next_code(c1 + 1) {
                        if lexed.is_punct(c2, ':') {
                            if let Some(m) = lexed.next_code(c2 + 1) {
                                if toks[m].kind == TokKind::Ident
                                    && ALLOC_CTORS.contains(&toks[m].text.as_str())
                                {
                                    report(format!("{name}::{}", toks[m].text), findings);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Body token ranges of the named functions.
fn fn_body_regions(lexed: &Lexed, fns: &[String]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || toks[i].text != "fn" || toks[i].attr {
            continue;
        }
        let Some(name_idx) = lexed.next_code(i + 1) else {
            continue;
        };
        if toks[name_idx].kind != TokKind::Ident || !fns.iter().any(|f| f == &toks[name_idx].text) {
            continue;
        }
        if let Some(region) = brace_block(lexed, name_idx) {
            regions.push(region);
        }
    }
    regions
}

/// Rule `boundary-panic`.
fn check_boundary(
    rel_path: &str,
    lexed: &Lexed,
    in_tests: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    let toks = &lexed.tokens;
    const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
    // Innermost enclosing `(`/`[` opener for each token.
    let enclosing: Vec<Option<usize>> = {
        let mut map = vec![None; toks.len()];
        let mut stack: Vec<usize> = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            map[i] = stack.last().copied();
            match t.kind {
                TokKind::Punct('(') | TokKind::Punct('[') => stack.push(i),
                TokKind::Punct(')') | TokKind::Punct(']') => {
                    stack.pop();
                }
                _ => {}
            }
        }
        map
    };
    for i in 0..toks.len() {
        if in_tests(i) || toks[i].attr {
            continue;
        }
        match toks[i].kind {
            TokKind::Ident => {
                let name = toks[i].text.as_str();
                if (name == "unwrap" || name == "expect")
                    && lexed.prev_code(i).is_some_and(|p| lexed.is_punct(p, '.'))
                    && lexed
                        .next_code(i + 1)
                        .is_some_and(|n| lexed.is_punct(n, '('))
                {
                    findings.push(Finding {
                        file: rel_path.to_string(),
                        line: toks[i].line,
                        rule: "boundary-panic",
                        message: format!(
                            "`.{name}()` in hardened boundary code; return an error instead"
                        ),
                    });
                } else if PANIC_MACROS.contains(&name)
                    && lexed
                        .next_code(i + 1)
                        .is_some_and(|n| lexed.is_punct(n, '!'))
                {
                    findings.push(Finding {
                        file: rel_path.to_string(),
                        line: toks[i].line,
                        rule: "boundary-panic",
                        message: format!(
                            "`{name}!` in hardened boundary code; return an error instead"
                        ),
                    });
                }
            }
            TokKind::Punct('[') => {
                let Some(p) = lexed.prev_code(i) else {
                    continue;
                };
                let indexes_expr = match toks[p].kind {
                    TokKind::Ident => {
                        !matches!(
                            toks[p].text.as_str(),
                            "return"
                                | "break"
                                | "in"
                                | "else"
                                | "match"
                                | "move"
                                | "mut"
                                | "ref"
                                | "box"
                                | "const"
                                | "static"
                                | "type"
                                | "impl"
                                | "dyn"
                                | "as"
                                | "where"
                                | "for"
                        ) && !toks[p].attr
                    }
                    TokKind::Punct(')') | TokKind::Punct(']') => true,
                    _ => false,
                };
                if !indexes_expr {
                    continue;
                }
                // A comment waives the finding when it sits on the indexing
                // line, the line above it, or the opening line of any
                // enclosing `(`/`[` group (so one comment covers a
                // multi-line expression).
                let covered = |line: u32| {
                    lexed.comments_on(line).next().is_some()
                        || (line > 1 && lexed.comments_on(line - 1).next().is_some())
                };
                let mut commented = false;
                let mut at = Some(i);
                while let Some(idx) = at {
                    if covered(toks[idx].line) {
                        commented = true;
                        break;
                    }
                    at = enclosing[idx];
                }
                if !commented {
                    findings.push(Finding {
                        file: rel_path.to_string(),
                        line: toks[i].line,
                        rule: "boundary-panic",
                        message: "unchecked indexing in hardened boundary code without a \
                                  bounds-justifying comment"
                            .to_string(),
                    });
                }
            }
            _ => {}
        }
    }
}

/// Rule `env-registry`.
fn check_env_literals(
    rel_path: &str,
    lexed: &Lexed,
    config: &Config,
    registries: &Registries,
    in_tests: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    for (i, tok) in lexed.tokens.iter().enumerate() {
        if tok.kind != TokKind::Str || tok.attr || in_tests(i) {
            continue;
        }
        let name = tok.text.as_str();
        let is_knob = name.len() > "CAPES_".len()
            && name.starts_with("CAPES_")
            && name
                .bytes()
                .all(|b| b.is_ascii_uppercase() || b.is_ascii_digit() || b == b'_');
        if is_knob && !registries.env.contains(name) {
            findings.push(Finding {
                file: rel_path.to_string(),
                line: tok.line,
                rule: "env-registry",
                message: format!(
                    "env var `{name}` is not declared in the knob registry ({})",
                    config.env_registry.join(", ")
                ),
            });
        }
    }
}

/// Rule `metric-registry`.
fn check_metric_literals(
    rel_path: &str,
    lexed: &Lexed,
    config: &Config,
    registries: &Registries,
    in_tests: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    const SINKS: &[&str] = &[
        "counter",
        "gauge",
        "histogram",
        "publish_counter",
        "publish_gauge",
        "publish_histogram",
    ];
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if in_tests(i) || toks[i].attr || toks[i].kind != TokKind::Ident {
            continue;
        }
        let name = toks[i].text.as_str();
        // `span!("…")` — also the journaling variant `span!("…", journal)`.
        let name_tok = if name == "span" {
            lexed
                .next_code(i + 1)
                .filter(|&n| lexed.is_punct(n, '!'))
                .and_then(|n| lexed.next_code(n + 1))
                .filter(|&p| lexed.is_punct(p, '('))
                .and_then(|p| lexed.next_code(p + 1))
                .filter(|&s| toks[s].kind == TokKind::Str)
        } else if SINKS.contains(&name)
            && lexed.prev_code(i).is_some_and(|p| lexed.is_punct(p, '.'))
        {
            lexed
                .next_code(i + 1)
                .filter(|&p| lexed.is_punct(p, '('))
                .and_then(|p| lexed.next_code(p + 1))
                .filter(|&s| toks[s].kind == TokKind::Str)
        } else {
            None
        };
        if let Some(s) = name_tok {
            let metric = toks[s].text.as_str();
            if !registries.metrics.contains(metric) {
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line: toks[s].line,
                    rule: "metric-registry",
                    message: format!(
                        "metric/span name `{metric}` is not declared in the name registry ({})",
                        config.metric_registry.join(", ")
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bare_config() -> Config {
        Config::default()
    }

    fn lint(src: &str) -> Vec<Finding> {
        lint_file(
            "crates/x/src/lib.rs",
            src,
            &bare_config(),
            &Registries::default(),
        )
    }

    #[test]
    fn safety_comment_is_required_and_recognized() {
        let bad = lint("fn f() { unsafe { g(); } }");
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, "safety-comment");
        let good = lint("fn f() {\n    // SAFETY: g has no preconditions.\n    unsafe { g(); }\n}");
        assert!(good.is_empty(), "{good:?}");
        let attr_between = lint(
            "// SAFETY: target checked by caller.\n#[target_feature(enable = \"avx2\")]\nunsafe fn k() {}",
        );
        assert!(attr_between.is_empty(), "{attr_between:?}");
        let blank_between = lint("// SAFETY: stale.\n\nunsafe fn k() {}");
        assert_eq!(blank_between.len(), 1);
    }

    #[test]
    fn unsafe_fn_pointer_types_are_not_sites() {
        let findings = lint("struct T { call: unsafe fn(*const (), usize) }");
        assert!(findings.is_empty(), "{findings:?}");
        let extern_fn = lint("type F = unsafe extern \"C\" fn(i32);");
        assert!(extern_fn.is_empty(), "{extern_fn:?}");
    }

    #[test]
    fn suppressions_waive_next_line_and_must_be_well_formed() {
        let waived =
            lint("// capes-check: allow(safety-comment) -- audited in tests.\nunsafe fn k() {}");
        assert!(waived.is_empty(), "{waived:?}");
        let unknown = lint("// capes-check: allow(no-such-rule) -- x\nfn f() {}");
        assert_eq!(unknown[0].rule, "bad-suppression");
        let reasonless = lint("// capes-check: allow(safety-comment)\nunsafe fn k() {}");
        assert!(reasonless.iter().any(|f| f.rule == "bad-suppression"));
        assert!(reasonless.iter().any(|f| f.rule == "safety-comment"));
    }

    #[test]
    fn hot_path_alloc_respects_fn_scoping() {
        let mut config = bare_config();
        config.hot_paths.push(crate::config::HotPath {
            file: "crates/x/src/lib.rs".to_string(),
            fns: vec!["hot".to_string()],
        });
        let src =
            "fn cold() { let v = Vec::new(); }\nfn hot() { let v = vec![1]; let s = x.clone(); }";
        let findings = lint_file("crates/x/src/lib.rs", src, &config, &Registries::default());
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings
            .iter()
            .all(|f| f.rule == "hot-path-alloc" && f.line == 2));
    }

    #[test]
    fn boundary_rules_fire_outside_tests_only() {
        let mut config = bare_config();
        config.boundary.push("crates/x/src".to_string());
        let src = "fn f(v: &[u8]) -> u8 { let x = v[0]; x }\n\
                   fn g() { q().unwrap(); panic!(\"no\"); }\n\
                   #[cfg(test)]\nmod tests { fn t() { q().unwrap(); } }";
        let findings = lint_file("crates/x/src/lib.rs", src, &config, &Registries::default());
        let rules: Vec<_> = findings.iter().map(|f| (f.line, f.rule)).collect();
        assert_eq!(
            rules,
            [
                (1, "boundary-panic"),
                (2, "boundary-panic"),
                (2, "boundary-panic")
            ],
            "{findings:?}"
        );
        // A justifying comment waives the indexing finding.
        let commented = "fn f(v: &[u8]) -> u8 { v[0] } // len checked by caller";
        let ok = lint_file(
            "crates/x/src/lib.rs",
            commented,
            &config,
            &Registries::default(),
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn name_registries_catch_drift() {
        let mut config = bare_config();
        config
            .env_registry
            .push("crates/capes/src/knobs.rs".to_string());
        config
            .metric_registry
            .push("crates/telemetry/src/names.rs".to_string());
        let mut registries = Registries::default();
        registries.env.insert("CAPES_THREADS".to_string());
        registries.metrics.insert("gemm.pool_dispatch".to_string());
        let src = "fn f() {\n\
                   let _ = std::env::var(\"CAPES_THREADS\");\n\
                   let _ = std::env::var(\"CAPES_BRAND_NEW\");\n\
                   let _s = span!(\"gemm.pool_dispatch\");\n\
                   let _t = span!(\"gemm.mystery\");\n\
                   reg.counter(\"gemm.mystery\");\n\
                   }";
        let findings = lint_file("crates/x/src/lib.rs", src, &config, &registries);
        let rules: Vec<_> = findings.iter().map(|f| (f.line, f.rule)).collect();
        assert_eq!(
            rules,
            [
                (3, "env-registry"),
                (5, "metric-registry"),
                (6, "metric-registry")
            ],
            "{findings:?}"
        );
    }
}
