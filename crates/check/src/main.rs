//! CLI for the workspace invariant linter.
//!
//! ```text
//! capes-check [--manifest check.toml] [--root <dir>]
//! ```
//!
//! Prints `file:line: [rule] message` per finding and exits non-zero if any
//! were found. `--root` defaults to the manifest's directory.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut manifest = PathBuf::from("check.toml");
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--manifest" => match args.next() {
                Some(v) => manifest = PathBuf::from(v),
                None => return usage("--manifest needs a path"),
            },
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage("--root needs a path"),
            },
            "--help" | "-h" => {
                println!("usage: capes-check [--manifest check.toml] [--root <dir>]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    let root = root
        .or_else(|| manifest.parent().map(PathBuf::from))
        .filter(|p| !p.as_os_str().is_empty())
        .unwrap_or_else(|| PathBuf::from("."));

    let config = match capes_check::load_config(&manifest) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("capes-check: cannot load {}: {e}", manifest.display());
            return ExitCode::from(2);
        }
    };
    let report = match capes_check::run(&root, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("capes-check: {e}");
            return ExitCode::from(2);
        }
    };
    for finding in &report.findings {
        println!("{finding}");
    }
    if report.findings.is_empty() {
        eprintln!("capes-check: {} files clean", report.files_checked);
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "capes-check: {} finding(s) across {} files",
            report.findings.len(),
            report.files_checked
        );
        ExitCode::FAILURE
    }
}

fn usage(message: &str) -> ExitCode {
    eprintln!("capes-check: {message}");
    eprintln!("usage: capes-check [--manifest check.toml] [--root <dir>]");
    ExitCode::from(2)
}
