//! `check.toml` manifest: which files are hardened boundaries, which are
//! declared hot paths, where the name registries live, and what to skip.
//!
//! The parser is a deliberately small TOML subset (tables, array-of-tables,
//! string and string-array values, `#` comments) — enough for the manifest,
//! zero dependencies.

use std::fmt;

/// A module declared allocation-free.
#[derive(Debug, Clone, Default)]
pub struct HotPath {
    /// Workspace-relative path.
    pub file: String,
    /// Function names the no-alloc rule applies to; empty ⇒ the whole file
    /// (minus `#[cfg(test)]` modules).
    pub fns: Vec<String>,
}

/// Parsed manifest.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Workspace-relative path prefixes to skip entirely.
    pub exclude: Vec<String>,
    /// Files whose string literals define the known `CAPES_*` env vars.
    pub env_registry: Vec<String>,
    /// Files whose string literals define the known metric/span names.
    pub metric_registry: Vec<String>,
    /// Hardened-boundary path prefixes (no unwrap/expect/panic!/bare indexing).
    pub boundary: Vec<String>,
    /// Declared allocation-free modules.
    pub hot_paths: Vec<HotPath>,
}

/// Manifest syntax error with its line number.
#[derive(Debug)]
pub struct ConfigError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "check.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

enum Section {
    None,
    Workspace,
    Registry,
    Boundary,
    HotPath,
}

/// Parses the manifest text.
pub fn parse(text: &str) -> Result<Config, ConfigError> {
    let mut config = Config::default();
    let mut section = Section::None;
    let mut lines = text.lines().enumerate().peekable();
    while let Some((index, raw)) = lines.next() {
        let line_no = index + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            match name.trim() {
                "hot_path" => {
                    config.hot_paths.push(HotPath::default());
                    section = Section::HotPath;
                }
                other => {
                    return Err(err(line_no, format!("unknown array table [[{other}]]")));
                }
            }
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            section = match name.trim() {
                "workspace" => Section::Workspace,
                "registry" => Section::Registry,
                "boundary" => Section::Boundary,
                other => return Err(err(line_no, format!("unknown table [{other}]"))),
            };
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(err(
                line_no,
                format!("expected `key = value`, got {line:?}"),
            ));
        };
        let key = key.trim();
        // Multi-line arrays: keep consuming lines until the bracket closes.
        let mut value = value.trim().to_string();
        if value.starts_with('[') && !balanced(&value) {
            for (_, continuation) in lines.by_ref() {
                value.push(' ');
                value.push_str(strip_comment(continuation).trim());
                if balanced(&value) {
                    break;
                }
            }
        }
        let values = parse_value(&value).map_err(|m| err(line_no, m))?;
        match (&section, key) {
            (Section::Workspace, "exclude") => config.exclude = values,
            (Section::Registry, "env") => config.env_registry = values,
            (Section::Registry, "metrics") => config.metric_registry = values,
            (Section::Boundary, "files") => config.boundary = values,
            (Section::HotPath, "file") => {
                let hot = config
                    .hot_paths
                    .last_mut()
                    .ok_or_else(|| err(line_no, "file outside [[hot_path]]".into()))?;
                hot.file = values
                    .into_iter()
                    .next()
                    .ok_or_else(|| err(line_no, "file needs a value".into()))?;
            }
            (Section::HotPath, "fns") => {
                let hot = config
                    .hot_paths
                    .last_mut()
                    .ok_or_else(|| err(line_no, "fns outside [[hot_path]]".into()))?;
                hot.fns = values;
            }
            (_, other) => {
                return Err(err(line_no, format!("unknown key {other:?} in this table")));
            }
        }
    }
    for hot in &config.hot_paths {
        if hot.file.is_empty() {
            return Err(err(0, "a [[hot_path]] entry is missing `file`".into()));
        }
    }
    Ok(config)
}

fn err(line: usize, message: String) -> ConfigError {
    ConfigError { line, message }
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn balanced(value: &str) -> bool {
    let mut depth = 0i32;
    let mut in_string = false;
    for c in value.chars() {
        match c {
            '"' => in_string = !in_string,
            '[' if !in_string => depth += 1,
            ']' if !in_string => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

/// Parses `"str"` or `["a", "b"]` into a list of strings.
fn parse_value(value: &str) -> Result<Vec<String>, String> {
    let value = value.trim();
    if let Some(inner) = value.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| format!("unterminated array: {value:?}"))?;
        let mut out = Vec::new();
        for part in split_array(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            out.push(parse_string(part)?);
        }
        Ok(out)
    } else {
        Ok(vec![parse_string(value)?])
    }
}

/// Splits array items on commas outside quotes.
fn split_array(inner: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut current = String::new();
    let mut in_string = false;
    for c in inner.chars() {
        match c {
            '"' => {
                in_string = !in_string;
                current.push(c);
            }
            ',' if !in_string => {
                parts.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    parts.push(current);
    parts
}

fn parse_string(part: &str) -> Result<String, String> {
    part.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected a quoted string, got {part:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_manifest_shape() {
        let config = parse(
            r#"
# comment
[workspace]
exclude = ["target", "crates/check/tests/fixtures"]

[registry]
env = "crates/capes/src/knobs.rs"
metrics = ["crates/telemetry/src/names.rs"]

[boundary]
files = [
    "crates/net/src", # trailing comment
    "crates/persist/src",
]

[[hot_path]]
file = "crates/tensor/src/simd.rs"

[[hot_path]]
file = "crates/tensor/src/pool.rs"
fns = ["run"]
"#,
        )
        .expect("manifest parses");
        assert_eq!(config.exclude.len(), 2);
        assert_eq!(config.env_registry, ["crates/capes/src/knobs.rs"]);
        assert_eq!(config.boundary, ["crates/net/src", "crates/persist/src"]);
        assert_eq!(config.hot_paths.len(), 2);
        assert_eq!(config.hot_paths[1].fns, ["run"]);
    }

    #[test]
    fn rejects_unknown_tables_and_bare_values() {
        assert!(parse("[nope]\n").is_err());
        assert!(parse("[workspace]\nexclude = nope\n").is_err());
        assert!(parse("[[hot_path]]\nfns = [\"x\"]\n").is_err());
    }
}
