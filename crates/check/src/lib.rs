//! capes-check: the workspace invariant linter.
//!
//! A dependency-free, token-level checker for the CAPES workspace's
//! project-specific invariants — the things `rustc` and clippy cannot see:
//! SAFETY-comment discipline, allocation-free hot paths, panic-free hardened
//! boundaries, and centrally registered env knobs and metric names. See
//! [`rules`] for the rule table and the inline suppression syntax, and
//! `check.toml` at the workspace root for the manifest format ([`config`]).

#![forbid(unsafe_code)]

pub mod config;
pub mod lexer;
pub mod rules;

pub use config::Config;
pub use rules::{Finding, Registries};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Outcome of a workspace run.
#[derive(Debug)]
pub struct Report {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files linted.
    pub files_checked: usize,
}

/// Reads and parses `check.toml` at `path`.
pub fn load_config(path: &Path) -> io::Result<Config> {
    let text = fs::read_to_string(path)?;
    config::parse(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Lints every `.rs` file under `root` against `config`.
pub fn run(root: &Path, config: &Config) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, root, config, &mut files)?;
    files.sort();

    let mut registries = Registries::default();
    for rel in config.env_registry.iter() {
        registries.env.extend(read_literals(root, rel)?);
    }
    for rel in config.metric_registry.iter() {
        registries.metrics.extend(read_literals(root, rel)?);
    }

    let mut findings = Vec::new();
    for rel in &files {
        let src = fs::read_to_string(root.join(rel))?;
        findings.extend(rules::lint_file(rel, &src, config, &registries));
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(Report {
        findings,
        files_checked: files.len(),
    })
}

fn read_literals(root: &Path, rel: &str) -> io::Result<std::collections::HashSet<String>> {
    let path = root.join(rel);
    let src = fs::read_to_string(&path)
        .map_err(|e| io::Error::new(e.kind(), format!("registry file {rel} is unreadable: {e}")))?;
    Ok(rules::literal_set(&src))
}

/// Recursively collects workspace-relative `.rs` paths, skipping build
/// output, VCS metadata, and configured excludes.
fn collect_rs_files(
    root: &Path,
    dir: &Path,
    config: &Config,
    out: &mut Vec<String>,
) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        let rel = relative(root, &path);
        if config
            .exclude
            .iter()
            .any(|e| rel == *e || rel.starts_with(&format!("{e}/")))
        {
            continue;
        }
        let kind = entry.file_type()?;
        if kind.is_dir() {
            collect_rs_files(root, &path, config, out)?;
        } else if kind.is_file() && name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// `root`-relative `/`-separated path string.
fn relative(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}
