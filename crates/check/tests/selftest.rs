//! The gate that keeps the workspace honest: the linter, run over the real
//! tree with the real `check.toml`, must report zero findings. Any new
//! undocumented `unsafe`, hot-path allocation, boundary panic, or
//! unregistered knob/metric name fails this test — the same signal CI gets
//! from running the binary.

use std::path::Path;

#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/check sits two levels below the workspace root")
        .to_path_buf();
    let config = capes_check::load_config(&root.join("check.toml")).expect("workspace manifest");
    let report = capes_check::run(&root, &config).expect("workspace lints");
    assert!(
        report.files_checked > 100,
        "suspiciously few files linted ({}) — exclusion list gone wrong?",
        report.files_checked
    );
    assert!(
        report.findings.is_empty(),
        "workspace must lint clean; findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
