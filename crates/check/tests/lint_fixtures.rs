//! The linter against its own fixture corpus: every rule must fire at the
//! exact (rule, file, line) triples the fixtures seed, and nothing else.
//!
//! The corpus lives in `tests/fixtures/` with its own `check.toml`; the
//! workspace manifest excludes that directory so the real gate never sees
//! the seeded violations.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture_findings() -> Vec<(String, u32, &'static str)> {
    let root = fixture_root();
    let config = capes_check::load_config(&root.join("check.toml")).expect("fixture manifest");
    let report = capes_check::run(&root, &config).expect("fixture corpus lints");
    report
        .findings
        .into_iter()
        .map(|f| (f.file, f.line, f.rule))
        .collect()
}

/// The complete expected finding set, sorted by (file, line, rule) — the
/// order `capes_check::run` promises.
fn expected() -> Vec<(String, u32, &'static str)> {
    let raw: &[(&str, u32, &'static str)] = &[
        ("src/boundary.rs", 6, "boundary-panic"),
        ("src/boundary.rs", 11, "boundary-panic"),
        ("src/boundary.rs", 17, "boundary-panic"),
        ("src/boundary.rs", 24, "boundary-panic"),
        ("src/envs.rs", 10, "env-registry"),
        ("src/hot.rs", 6, "hot-path-alloc"),
        ("src/hot.rs", 8, "hot-path-alloc"),
        ("src/hot.rs", 9, "hot-path-alloc"),
        ("src/hot.rs", 10, "hot-path-alloc"),
        ("src/hot.rs", 11, "hot-path-alloc"),
        ("src/hot_fns.rs", 8, "hot-path-alloc"),
        ("src/metrics.rs", 8, "metric-registry"),
        ("src/metrics.rs", 13, "metric-registry"),
        ("src/safety.rs", 10, "safety-comment"),
        ("src/safety.rs", 20, "safety-comment"),
        ("src/suppress.rs", 5, "bad-suppression"),
        ("src/suppress.rs", 7, "bad-suppression"),
        ("src/suppress.rs", 9, "bad-suppression"),
    ];
    raw.iter().map(|&(f, l, r)| (f.to_string(), l, r)).collect()
}

#[test]
fn corpus_reports_exactly_the_seeded_violations() {
    let got = fixture_findings();
    let want = expected();
    // Compare as full sorted sequences so an extra or missing finding (not
    // just a wrong one) fails with a readable diff.
    let missing: Vec<_> = want.iter().filter(|w| !got.contains(w)).collect();
    let extra: Vec<_> = got.iter().filter(|g| !want.contains(g)).collect();
    assert!(
        missing.is_empty() && extra.is_empty(),
        "fixture findings diverged\nmissing: {missing:#?}\nextra: {extra:#?}\nfull: {got:#?}"
    );
    assert_eq!(got, want, "findings must be sorted by (file, line, rule)");
}

#[test]
fn every_rule_id_is_exercised_by_the_corpus() {
    let got = fixture_findings();
    for rule in capes_check::rules::RULE_IDS {
        assert!(
            got.iter().any(|(_, _, r)| r == rule),
            "rule `{rule}` has no fixture coverage"
        );
    }
}

#[test]
fn binary_exits_nonzero_and_prints_locations() {
    let manifest = fixture_root().join("check.toml");
    let out = Command::new(env!("CARGO_BIN_EXE_capes-check"))
        .arg("--manifest")
        .arg(&manifest)
        .output()
        .expect("linter binary runs");
    assert_eq!(out.status.code(), Some(1), "violations must exit 1");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 findings");
    for (file, line, rule) in expected() {
        let needle = format!("{file}:{line}: [{rule}]");
        assert!(
            stdout.contains(&needle),
            "stdout missing `{needle}`:\n{stdout}"
        );
    }
}

#[test]
fn binary_exits_two_on_missing_manifest() {
    let out = Command::new(env!("CARGO_BIN_EXE_capes-check"))
        .arg("--manifest")
        .arg("does/not/exist/check.toml")
        .output()
        .expect("linter binary runs");
    assert_eq!(out.status.code(), Some(2), "config errors must exit 2");
}
