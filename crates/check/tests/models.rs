//! Bounded model checking of the workspace's concurrency cores.
//!
//! Each model here is a line-for-line port of a real protocol onto the
//! `interleave` shim's schedule-point primitives, so every sequentially
//! consistent interleaving (up to the CHESS-style preemption bound of 2) is
//! explored exhaustively:
//!
//! * the bounded ring channel from the crossbeam shim (the zero-allocation
//!   dispatch backbone of both the GEMM `WorkerPool` and the fleet pool);
//! * the dispatch/acknowledge/panic-propagation protocol of the pools
//!   themselves (`capes_tensor::pool`, `capes_fleet::sched`);
//! * the telemetry registry's lock-guarded interning and the histogram's
//!   relaxed read-modify-write recording path.
//!
//! A failing schedule panics with a replay seed (`"0-1-0-2"`); the final
//! test proves the harness actually catches a seeded protocol bug and that
//! its seed replays deterministically.

use interleave::sync::atomic::{AtomicUsize, Ordering};
use interleave::sync::{Condvar, Mutex};
use interleave::thread;
use std::collections::VecDeque;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Port of the crossbeam shim's bounded channel (State/Shared, two condvars).
// ---------------------------------------------------------------------------

struct RingState<T> {
    queue: VecDeque<T>,
    capacity: usize,
    senders: usize,
}

struct Ring<T> {
    state: Mutex<RingState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Ring<T> {
    fn new(capacity: usize) -> Self {
        Ring {
            state: Mutex::new(RingState {
                queue: VecDeque::with_capacity(capacity),
                capacity,
                senders: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Mirrors `Sender::send`: blocks while the ring is full.
    fn send(&self, value: T) {
        let mut state = self.state.lock().unwrap();
        loop {
            if state.queue.len() < state.capacity {
                state.queue.push_back(value);
                drop(state);
                self.not_empty.notify_one();
                return;
            }
            state = self.not_full.wait(state).unwrap();
        }
    }

    /// Mirrors `Receiver::recv`: blocks until a message or disconnection.
    fn recv(&self) -> Option<T> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(v) = state.queue.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(v);
            }
            if state.senders == 0 {
                return None;
            }
            state = self.not_empty.wait(state).unwrap();
        }
    }

    /// Mirrors dropping the last `Sender`.
    fn drop_sender(&self) {
        let mut state = self.state.lock().unwrap();
        state.senders -= 1;
        let disconnected = state.senders == 0;
        drop(state);
        if disconnected {
            self.not_empty.notify_all();
        }
    }
}

#[test]
fn ring_channel_is_fifo_and_lossless() {
    let report = interleave::model(|| {
        let ring = Arc::new(Ring::new(1));
        let tx = Arc::clone(&ring);
        let producer = thread::spawn(move || {
            // Capacity 1 forces the second send to block until the consumer
            // drains the first — the exact backpressure the pools rely on.
            tx.send(10u32);
            tx.send(20u32);
        });
        let first = ring.recv().expect("sender still connected");
        let second = ring.recv().expect("sender still connected");
        producer.join();
        assert_eq!((first, second), (10, 20), "FIFO order, no loss");
    });
    assert!(
        report.schedules > 1,
        "contention must branch the exploration"
    );
}

#[test]
fn ring_channel_disconnect_unblocks_the_receiver() {
    interleave::model(|| {
        let ring = Arc::new(Ring::new(1));
        let tx = Arc::clone(&ring);
        let producer = thread::spawn(move || {
            tx.send(7u32);
            tx.drop_sender();
        });
        // Whatever the interleaving, the receiver must see the message and
        // then the disconnect — never a hang, never a dropped message.
        assert_eq!(ring.recv(), Some(7));
        assert_eq!(ring.recv(), None, "disconnect after drain");
        producer.join();
    });
}

// ---------------------------------------------------------------------------
// Port of the WorkerPool / fleet-pool dispatch protocol: single-slot task
// channels, an acknowledgement channel, panics contained on the worker and
// re-raised on the dispatcher after the ack barrier.
// ---------------------------------------------------------------------------

/// One dispatched chunk: which cell to bump, and whether the chunk "panics"
/// (the port of a panicking closure caught by `catch_unwind` on the worker).
#[derive(Clone, Copy)]
struct Chunk {
    cell: usize,
    poison: bool,
}

#[test]
fn pool_dispatch_covers_every_chunk_exactly_once() {
    let report = interleave::model(|| {
        let tasks: Arc<Ring<Chunk>> = Arc::new(Ring::new(1));
        let acks: Arc<Ring<bool>> = Arc::new(Ring::new(1));
        let cells: Arc<Vec<AtomicUsize>> = Arc::new((0..2).map(|_| AtomicUsize::new(0)).collect());

        let (task_rx, ack_tx, worker_cells) =
            (Arc::clone(&tasks), Arc::clone(&acks), Arc::clone(&cells));
        let worker = thread::spawn(move || {
            // Mirrors the worker loop: recv, execute, always ack.
            while let Some(chunk) = task_rx.recv() {
                worker_cells[chunk.cell].fetch_add(1, Ordering::SeqCst);
                ack_tx.send(false);
            }
        });

        // Dispatcher: one chunk to the worker, the tail chunk inline, then
        // the ack barrier — the order the real `run` uses.
        tasks.send(Chunk {
            cell: 0,
            poison: false,
        });
        cells[1].fetch_add(1, Ordering::SeqCst);
        let worker_panicked = acks.recv().expect("worker acks before exiting");
        assert!(!worker_panicked);
        tasks.drop_sender();
        worker.join();
        for cell in cells.iter() {
            assert_eq!(cell.load(Ordering::SeqCst), 1, "each chunk ran once");
        }
    });
    assert!(report.schedules > 1);
}

#[test]
fn pool_panic_propagates_through_the_ack_barrier() {
    interleave::model(|| {
        let tasks: Arc<Ring<Chunk>> = Arc::new(Ring::new(1));
        let acks: Arc<Ring<bool>> = Arc::new(Ring::new(1));

        let (task_rx, ack_tx) = (Arc::clone(&tasks), Arc::clone(&acks));
        let worker = thread::spawn(move || {
            while let Some(chunk) = task_rx.recv() {
                // A poisoned chunk is the port of `catch_unwind` trapping a
                // panicking closure: the work is abandoned but the ack MUST
                // still flow, or the dispatcher deadlocks.
                ack_tx.send(chunk.poison);
            }
        });

        tasks.send(Chunk {
            cell: 0,
            poison: true,
        });
        let worker_panicked = acks.recv().expect("ack arrives even for a panic");
        assert!(
            worker_panicked,
            "the panic flag must survive the ack barrier"
        );
        tasks.drop_sender();
        worker.join();
    });
}

#[test]
fn pool_shutdown_drains_pending_work_before_exit() {
    interleave::model(|| {
        let tasks: Arc<Ring<Chunk>> = Arc::new(Ring::new(2));
        let done = Arc::new(AtomicUsize::new(0));

        let (task_rx, worker_done) = (Arc::clone(&tasks), Arc::clone(&done));
        let worker = thread::spawn(move || {
            let mut processed = 0usize;
            while task_rx.recv().is_some() {
                processed += 1;
            }
            worker_done.store(processed, Ordering::SeqCst);
        });

        // Shutdown is "drop the sender": both queued tasks must still be
        // processed before the worker observes the disconnect and exits.
        tasks.send(Chunk {
            cell: 0,
            poison: false,
        });
        tasks.send(Chunk {
            cell: 1,
            poison: false,
        });
        tasks.drop_sender();
        worker.join();
        assert_eq!(done.load(Ordering::SeqCst), 2, "no task lost at shutdown");
    });
}

// ---------------------------------------------------------------------------
// Port of the telemetry registry's interning and the histogram's relaxed
// read-modify-write recording path.
// ---------------------------------------------------------------------------

/// Mirrors `capes_telemetry::Registry`: a mutex over `(name, handle)` pairs;
/// interning either finds the existing handle or registers a fresh one.
struct ModelRegistry {
    inner: Mutex<Vec<(&'static str, Arc<AtomicUsize>)>>,
}

impl ModelRegistry {
    fn new() -> Self {
        ModelRegistry {
            inner: Mutex::new(Vec::new()),
        }
    }

    fn intern(&self, name: &'static str) -> Arc<AtomicUsize> {
        let mut inner = self.inner.lock().unwrap();
        if let Some((_, handle)) = inner.iter().find(|(n, _)| *n == name) {
            return Arc::clone(handle);
        }
        let handle = Arc::new(AtomicUsize::new(0));
        inner.push((name, Arc::clone(&handle)));
        handle
    }

    fn entries(&self) -> usize {
        self.inner.lock().unwrap().len()
    }
}

#[test]
fn registry_interning_races_to_a_single_handle() {
    let report = interleave::model(|| {
        let registry = Arc::new(ModelRegistry::new());
        let r2 = Arc::clone(&registry);
        let other = thread::spawn(move || {
            r2.intern("fleet.ticks").fetch_add(1, Ordering::Relaxed);
        });
        registry
            .intern("fleet.ticks")
            .fetch_add(1, Ordering::Relaxed);
        other.join();
        // Both threads must land on the SAME storage: one entry, two counts.
        assert_eq!(registry.entries(), 1, "duplicate interning");
        let total = registry.intern("fleet.ticks").load(Ordering::Relaxed);
        assert_eq!(total, 2, "an increment was lost");
    });
    assert!(report.schedules > 1);
}

/// Mirrors `Histogram::record`: three relaxed RMWs (bucket, sum, max) with
/// `count()` derived from the bucket sum so concurrent recorders can never
/// tear the total.
struct ModelHistogram {
    buckets: [AtomicUsize; 2],
    sum: AtomicUsize,
    max: AtomicUsize,
}

impl ModelHistogram {
    fn new() -> Self {
        ModelHistogram {
            buckets: [AtomicUsize::new(0), AtomicUsize::new(0)],
            sum: AtomicUsize::new(0),
            max: AtomicUsize::new(0),
        }
    }

    fn record(&self, value: usize) {
        // Two-bucket stand-in for `bucket_index`: small values left, large
        // right — enough to explore cross-bucket interleavings.
        let bucket = usize::from(value >= 32);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    fn count(&self) -> usize {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }
}

#[test]
fn histogram_concurrent_records_conserve_every_statistic() {
    let report = interleave::model(|| {
        let hist = Arc::new(ModelHistogram::new());
        let h2 = Arc::clone(&hist);
        let recorder = thread::spawn(move || {
            h2.record(40);
        });
        hist.record(3);
        recorder.join();
        assert_eq!(hist.count(), 2, "a bucket increment was lost");
        assert_eq!(hist.sum.load(Ordering::Relaxed), 43, "sum tore");
        assert_eq!(hist.max.load(Ordering::Relaxed), 40, "max regressed");
    });
    assert!(report.schedules > 1);
}

// ---------------------------------------------------------------------------
// The harness must actually catch bugs: seed a TOCTOU into the ring's send
// path and prove the checker finds it and the printed seed replays.
// ---------------------------------------------------------------------------

/// A deliberately broken send: checks fullness, DROPS the lock, then pushes.
/// Two producers can both observe "not full" and overflow a capacity-1 ring.
fn toctou_send(ring: &Ring<u32>, value: u32) {
    let full = {
        let state = ring.state.lock().unwrap();
        state.queue.len() >= state.capacity
    };
    if !full {
        ring.state.lock().unwrap().queue.push_back(value);
    }
}

fn toctou_model() {
    let ring = Arc::new(Ring::new(1));
    let r2 = Arc::clone(&ring);
    let other = thread::spawn(move || {
        toctou_send(&r2, 1);
    });
    toctou_send(&ring, 2);
    other.join();
    let len = ring.state.lock().unwrap().queue.len();
    assert!(len <= 1, "capacity-1 ring overflowed: len {len}");
}

#[test]
fn checker_finds_the_seeded_toctou_and_its_seed_replays() {
    let failure = std::panic::catch_unwind(|| interleave::model(toctou_model))
        .expect_err("the TOCTOU overflow must be discovered");
    let message = failure
        .downcast_ref::<String>()
        .cloned()
        .expect("model failures carry a message");
    assert!(message.contains("replay seed"), "got: {message}");
    let seed = message
        .split('"')
        .nth(1)
        .expect("the seed is quoted")
        .to_string();
    // Replaying the reported schedule must reproduce the same overflow —
    // the failure is deterministic, not a flaky race.
    let replayed = std::panic::catch_unwind(move || interleave::replay(&seed, toctou_model));
    assert!(replayed.is_err(), "the replay seed must reproduce the bug");
}
