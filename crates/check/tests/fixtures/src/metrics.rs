//! Fixture: `metric-registry` rule. Violations at lines 8 and 13.

/// A telemetry-ish sink used to exercise the method-call patterns.
pub struct Sink;

impl Sink {
    pub fn tick(&self, t: &Sink) {
        t.counter("fixture.rogue_counter");
        t.counter("fixture.known_counter");
    }

    pub fn trace(&self) {
        span!("fixture.rogue_span");
        span!("fixture.known_span");
    }

    pub fn counter(&self, _name: &str) {}
}
