//! Fixture: `env-registry` rule. The violation is at line 10.

/// Reads a knob that IS in the fixture registry: no finding.
pub fn known() -> Option<String> {
    std::env::var("CAPES_FIXTURE_KNOWN").ok()
}

/// Reads a knob missing from the registry: flagged.
pub fn unknown() -> Option<String> {
    std::env::var("CAPES_FIXTURE_ROGUE").ok()
}
