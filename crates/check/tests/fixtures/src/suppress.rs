//! Fixture: `bad-suppression` rule. Violations at lines 5, 7 and 9.

/// Each malformed marker below is itself a finding.
pub fn malformed() -> u32 {
    // capes-check: allow(boundary-panic)
    let without_reason = 1;
    // capes-check: allow(not-a-real-rule) -- the rule id is unknown.
    let unknown_rule = 2;
    // capes-check: disable everything please
    let wrong_shape = 3;
    without_reason + unknown_rule + wrong_shape
}
