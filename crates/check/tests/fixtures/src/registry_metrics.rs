//! Fixture metric-name registry: the only metric/span names the corpus may use.

/// A counter the fixtures are allowed to publish.
pub const KNOWN_COUNTER: &str = "fixture.known_counter";

/// A span the fixtures are allowed to open.
pub const KNOWN_SPAN: &str = "fixture.known_span";
