//! Fixture env-knob registry: the only CAPES_* names the corpus may use.

/// A knob the fixtures are allowed to read.
pub const KNOWN: &str = "CAPES_FIXTURE_KNOWN";
