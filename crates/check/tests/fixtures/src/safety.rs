//! Fixture: `safety-comment` rule. Violations at lines 10 and 20.

/// Reads a value the safe way first.
pub fn documented(p: *const u32) -> u32 {
    // SAFETY: the caller promises `p` is valid for reads.
    unsafe { *p }
}

pub fn undocumented(p: *const u32) -> u32 {
    unsafe { *p }
}

struct Wrapper(*const u32);

// SAFETY: the pointer is only dereferenced on the owning thread.
unsafe impl Send for Wrapper {}

struct Bare(*const u32);

unsafe impl Send for Bare {}

/// # Safety
/// `p` must be valid for reads.
pub unsafe fn contract(p: *const u32) -> u32 {
    // SAFETY: forwarded from this function's own contract.
    unsafe { *p }
}
