//! Fixture: `boundary-panic` rule. Violations at lines 6, 11, 17 and 24;
//! everything past line 24 is either waived, suppressed, or in tests.

/// An unwrap on a hardened boundary is a finding.
pub fn bare_unwrap(input: &str) -> u32 {
    input.parse().unwrap()
}

/// So is an expect, even with a good message.
pub fn bare_expect(input: &str) -> u32 {
    input.parse().expect("caller validated digits")
}

/// And a panic macro.
pub fn reject(code: u32) -> u32 {
    if code > 100 {
        panic!("code out of range");
    }
    code
}

/// Indexing without a justifying comment is a finding.
pub fn head(xs: &[u32]) -> u32 {
    xs[0]
}

/// Indexing with a comment on the line above is waived.
pub fn second(xs: &[u32]) -> u32 {
    // In bounds: callers pass at least two elements.
    xs[1]
}

/// A suppression with a reason silences the rule for the next line.
pub fn suppressed(input: &str) -> u32 {
    // capes-check: allow(boundary-panic) -- fixture exercising suppression.
    input.parse().unwrap()
}

#[cfg(test)]
mod tests {
    /// Test code may unwrap freely.
    #[test]
    fn unwrap_in_tests_is_fine() {
        let n: u32 = "7".parse().unwrap();
        assert_eq!(n, 7);
    }
}
