//! Fixture: `hot-path-alloc` rule, whole-file hot path.
//! Violations at lines 6, 8, 9, 10 and 11.

/// The whole file is declared hot, so every allocation below is flagged.
pub fn tick(xs: &[f64]) -> f64 {
    let mut scratch = Vec::new();
    scratch.push(xs.len());
    let copy = xs.to_vec();
    let label = format!("{} rows", xs.len());
    let doubled: Vec<f64> = xs.iter().map(|x| x * 2.0).collect();
    let boxed = Box::new(xs.len());
    let _ = (copy, label, doubled, boxed);
    xs.iter().sum()
}

/// Arithmetic stays clean: nothing here allocates.
pub fn fused(a: f64, b: f64, c: f64) -> f64 {
    a * b + c
}
