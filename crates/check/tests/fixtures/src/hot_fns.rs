//! Fixture: `hot-path-alloc` rule scoped to named functions.
//! Only `inner_loop` is hot; the violation is at line 8.

/// Declared hot in check.toml: allocations here are findings.
pub fn inner_loop(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for x in xs {
        let held = x.to_string();
        acc += held.len() as f64;
    }
    acc
}

/// Not listed as hot: the same allocation is fine here.
pub fn setup(xs: &[f64]) -> Vec<String> {
    xs.iter().map(|x| x.to_string()).collect()
}
