//! Offline, API-compatible subset of `rand` 0.8 for this workspace.
//!
//! Provides `rngs::StdRng` (a xoshiro256++ generator seeded through
//! SplitMix64), the `Rng`/`RngCore`/`SeedableRng` traits with the methods the
//! workspace uses (`gen`, `gen_range`, `gen_bool`, `sample`), and the
//! `distributions::Distribution` trait. Streams differ from upstream rand's
//! ChaCha-based `StdRng`, but every consumer in this workspace only relies on
//! determinism-given-seed and reasonable statistical quality.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`
    /// (uniform in `[0, 1)` for floats, uniform over all values for integers).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Samples a value uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        self.gen::<f64>() < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distribution: D) -> T {
        distribution.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut state = [0u64; 4];
            for slot in &mut state {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start in the all-zero state.
            if state == [0, 0, 0, 0] {
                state[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { state }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for checkpointing. Restoring it with
        /// [`StdRng::from_state`] resumes the stream exactly where it left off.
        pub fn state(&self) -> [u64; 4] {
            self.state
        }

        /// Rebuilds a generator from a state captured by [`StdRng::state`].
        /// The all-zero state is a xoshiro fixed point and is rejected.
        pub fn from_state(state: [u64; 4]) -> Self {
            assert!(state != [0, 0, 0, 0], "all-zero xoshiro state");
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.state = [s0, s1, s2, s3];
            result
        }
    }
}

/// Distributions and range sampling.
pub mod distributions {
    use super::{Range, RangeInclusive, Rng, RngCore};

    /// A distribution producing values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution: uniform `[0, 1)` floats, uniform integers.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits → uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// A range that can be sampled uniformly (`Rng::gen_range` argument).
    pub trait SampleRange<T> {
        /// Draws one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! impl_int_sample_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (start as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_sample_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    self.start + (self.end - self.start) * unit as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    start + (end - start) * unit as $t
                }
            }
        )*};
    }

    impl_float_sample_range!(f32, f64);
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_stay_in_range_and_spread() {
        let mut rng = StdRng::seed_from_u64(7);
        let draws: Vec<f64> = (0..10_000).map(|_| rng.gen::<f64>()).collect();
        assert!(draws.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let inc = rng.gen_range(0..=4u64);
            assert!(inc <= 4);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }
}
