//! Derive macros for the offline `serde` shim.
//!
//! Supports the shapes this workspace actually derives on:
//!
//! * structs with named fields (including `#[serde(skip)]` fields, which are
//!   omitted on serialize and `Default`-initialised on deserialize, and
//!   `#[serde(default)]` fields, which fall back to `Default::default()`
//!   when absent from the input — the escape hatch that keeps old payloads
//!   readable after a struct grows a field);
//! * enums with unit, newtype, tuple and struct variants.
//!
//! Generic types, tuple structs and other serde attributes are rejected with
//! a compile error. The macros are written against `proc_macro` directly (no
//! `syn`/`quote`, which are unavailable offline): the input item is parsed by
//! a small token walker and the impl is emitted as a source string.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
    /// `#[serde(default)]`: on deserialize, a missing entry becomes
    /// `Default::default()` instead of an error.
    default: bool,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn compile_error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});").parse().unwrap()
}

/// Consumes leading attributes starting at `i`; returns the next index and
/// whether the attributes included `#[serde(skip)]` / `#[serde(default)]`.
fn skip_attributes(tokens: &[TokenTree], mut i: usize) -> (usize, bool, bool) {
    let mut skip = false;
    let mut default = false;
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let Some(TokenTree::Ident(attr_name)) = inner.first() {
                    if attr_name.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = inner.get(1) {
                            let arg = args.stream().to_string();
                            match arg.trim() {
                                "skip" => skip = true,
                                "default" => default = true,
                                // Any other serde attribute is unsupported; flag
                                // it loudly rather than silently mis-serializing.
                                _ => panic!(
                                    "serde shim derive: unsupported attribute #[serde({arg})]"
                                ),
                            }
                        }
                    }
                }
                i += 2;
            }
            _ => break,
        }
    }
    (i, skip, default)
}

/// Parses the fields of a braced field list: `pub name: Type, ...`.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, skip, default) = skip_attributes(&tokens, i);
        i = next;
        if i >= tokens.len() {
            break;
        }
        // Optional visibility: `pub` or `pub(...)`.
        if let TokenTree::Ident(ident) = &tokens[i] {
            if ident.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected ':' after field {name}, found {other:?}")),
        }
        // Skip the type: consume until a comma at angle-bracket depth zero.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field {
            name,
            skip,
            default,
        });
    }
    Ok(fields)
}

/// Counts the fields of a tuple-variant payload (top-level commas + 1).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut trailing_comma = false;
    for (index, token) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if index == tokens.len() - 1 {
                        trailing_comma = true;
                    } else {
                        count += 1;
                    }
                }
                _ => {}
            }
        }
    }
    let _ = trailing_comma;
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, _, _) = skip_attributes(&tokens, i);
        i = next;
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(g.stream())?)
            }
            _ => VariantShape::Unit,
        };
        // Expect a comma (or end of stream).
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            other => {
                return Err(format!(
                    "expected ',' after variant {name}, found {other:?}"
                ))
            }
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    loop {
        let (next, _, _) = skip_attributes(&tokens, i);
        i = next;
        match tokens.get(i) {
            Some(TokenTree::Ident(ident)) => {
                let word = ident.to_string();
                if word == "struct" || word == "enum" {
                    break;
                }
                // Visibility or other modifiers; skip.
                i += 1;
            }
            Some(TokenTree::Group(_)) | Some(TokenTree::Punct(_)) | Some(TokenTree::Literal(_)) => {
                i += 1;
            }
            None => return Err("no struct or enum found".into()),
        }
    }
    let is_struct = matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "struct");
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "generic type {name} is not supported by the serde shim derive"
            ));
        }
    }
    // Find the body (the first brace group).
    let body = tokens[i..]
        .iter()
        .find_map(|t| match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .ok_or_else(|| {
            format!("tuple/unit struct {name} is not supported by the serde shim derive")
        })?;
    if is_struct {
        Ok(Item::Struct {
            name,
            fields: parse_named_fields(body)?,
        })
    } else {
        Ok(Item::Enum {
            name,
            variants: parse_variants(body)?,
        })
    }
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let mut pushes = String::new();
            for field in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "entries.push(({:?}.to_string(), serde::Serialize::to_value(&self.{})));\n",
                    field.name, field.name
                ));
            }
            format!(
                "#[automatically_derived]\n\
                 impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         let mut entries: Vec<(String, serde::Value)> = Vec::new();\n\
                         {pushes}\
                         serde::Value::Map(entries)\n\
                     }}\n\
                 }}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => serde::Value::Str({vname:?}.to_string()),\n"
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(f0) => serde::Value::Map(vec![({vname:?}.to_string(), \
                         serde::Serialize::to_value(f0))]),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let values: Vec<String> = binders
                            .iter()
                            .map(|b| format!("serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => serde::Value::Map(vec![({vname:?}.to_string(), \
                             serde::Value::Seq(vec![{}]))]),\n",
                            binders.join(", "),
                            values.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "({:?}.to_string(), serde::Serialize::to_value({}))",
                                    f.name, f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => serde::Value::Map(vec![({vname:?}.to_string(), \
                             serde::Value::Map(vec![{}]))]),\n",
                            binders.join(", "),
                            entries.join(", ")
                        ));
                    }
                }
            }
            format!(
                "#[automatically_derived]\n\
                 impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}\n"
            )
        }
    }
}

fn gen_named_field_build(type_label: &str, fields: &[Field], source: &str) -> String {
    let mut inits = String::new();
    for field in fields {
        if field.skip {
            inits.push_str(&format!(
                "{}: std::default::Default::default(),\n",
                field.name
            ));
        } else if field.default {
            inits.push_str(&format!(
                "{field}: match serde::map_get({source}, {field_str:?}) {{\n\
                     Some(v) => serde::Deserialize::from_value(v)?,\n\
                     None => std::default::Default::default(),\n\
                 }},\n",
                field = field.name,
                field_str = field.name,
            ));
        } else {
            inits.push_str(&format!(
                "{field}: match serde::map_get({source}, {field_str:?}) {{\n\
                     Some(v) => serde::Deserialize::from_value(v)?,\n\
                     None => return Err(serde::DeError::custom(concat!(\n\
                         {type_label:?}, \": missing field \", {field_str:?}))),\n\
                 }},\n",
                field = field.name,
                field_str = field.name,
            ));
        }
    }
    inits
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let inits = gen_named_field_build(name, fields, "entries");
            format!(
                "#[automatically_derived]\n\
                 impl serde::Deserialize for {name} {{\n\
                     fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                         let entries = value.as_map().ok_or_else(|| \
                             serde::DeError::custom(concat!({name:?}, \": expected object\")))?;\n\
                         Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => unit_arms.push_str(&format!(
                        "{vname:?} => Ok({name}::{vname}),\n"
                    )),
                    VariantShape::Tuple(1) => data_arms.push_str(&format!(
                        "{vname:?} => Ok({name}::{vname}(serde::Deserialize::from_value(payload)?)),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|k| format!("serde::Deserialize::from_value(&seq[{k}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "{vname:?} => {{\n\
                                 let seq = payload.as_seq().ok_or_else(|| \
                                     serde::DeError::custom(\"expected tuple variant array\"))?;\n\
                                 if seq.len() != {n} {{\n\
                                     return Err(serde::DeError::custom(\"wrong tuple variant arity\"));\n\
                                 }}\n\
                                 Ok({name}::{vname}({}))\n\
                             }},\n",
                            elems.join(", ")
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let inits = gen_named_field_build(name, fields, "entries");
                        data_arms.push_str(&format!(
                            "{vname:?} => {{\n\
                                 let entries = payload.as_map().ok_or_else(|| \
                                     serde::DeError::custom(\"expected struct variant object\"))?;\n\
                                 Ok({name}::{vname} {{\n{inits}}})\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!(
                "#[automatically_derived]\n\
                 impl serde::Deserialize for {name} {{\n\
                     fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                         match value {{\n\
                             serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\
                                 other => Err(serde::DeError::custom(format!(\n\
                                     concat!({name:?}, \": unknown variant {{}}\"), other))),\n\
                             }},\n\
                             serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                                 let (key, payload) = &entries[0];\n\
                                 let _ = payload;\n\
                                 match key.as_str() {{\n\
                                     {data_arms}\
                                     other => Err(serde::DeError::custom(format!(\n\
                                         concat!({name:?}, \": unknown variant {{}}\"), other))),\n\
                                 }}\n\
                             }}\n\
                             _ => Err(serde::DeError::custom(concat!({name:?}, \": expected variant\"))),\n\
                         }}\n\
                     }}\n\
                 }}\n"
            )
        }
    }
}

/// Derives `serde::Serialize` (shim data model).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(message) => compile_error(&message),
    }
}

/// Derives `serde::Deserialize` (shim data model).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().unwrap(),
        Err(message) => compile_error(&message),
    }
}
