//! Offline property-testing harness exposing the subset of the `proptest`
//! API this workspace uses: the `proptest!` macro, `Strategy` with
//! `prop_map`, range and tuple strategies, `any::<T>()`,
//! `prop::collection::vec`, `ProptestConfig::with_cases` and the
//! `prop_assert*` macros.
//!
//! Unlike real proptest there is no shrinking: each case draws fresh inputs
//! from a deterministic RNG seeded per test function, and a failing case
//! reports its case index so the run can be reproduced.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::Rng;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $index:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$index.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Strategy for "any value of `T`" (uniform over the full domain).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Produces the `any::<T>()` strategy.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Types `any::<T>()` can produce.
pub trait ArbitraryValue: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl ArbitraryValue for u64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl ArbitraryValue for u32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Finite, moderately sized floats: the workspace's properties are
        // numeric identities where NaN/inf would only test float semantics.
        rng.gen_range(-1e6..1e6)
    }
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{StdRng, Strategy};

    /// Strategy producing a `Vec` of exactly `len` elements.
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// Produces a vector strategy with an exact length.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The namespace `proptest::prelude::prop` re-exports.
pub mod prop {
    pub use crate::collection;
}

/// Glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (plain `assert!` underneath).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests.
///
/// Each property becomes a `#[test]` that draws `config.cases` input tuples
/// from its strategies using a deterministic per-test seed.
#[macro_export]
macro_rules! proptest {
    (@config ($config:expr)) => {};
    (@config ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::Strategy as _;
            let config: $crate::ProptestConfig = $config;
            // Deterministic per-test seed derived from the test name.
            let seed = {
                let name = stringify!($name);
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in name.bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x100_0000_01b3);
                }
                h
            };
            let mut rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(seed);
            for case in 0..config.cases {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    $(let $pat = ($strategy).generate(&mut rng);)+
                    $body
                }));
                if let Err(panic) = result {
                    eprintln!(
                        "proptest {}: case {case}/{} failed (seed {seed})",
                        stringify!($name),
                        config.cases
                    );
                    std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::proptest!(@config ($config) $($rest)*);
    };
    // With a leading config attribute.
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@config ($config) $($rest)*);
    };
    // Without one.
    ($($rest:tt)*) => {
        $crate::proptest!(@config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

// The macro needs a path to the rand shim from the caller's crate.
#[doc(hidden)]
pub use rand as __rand;
