//! Offline micro-benchmark harness exposing the subset of the `criterion`
//! API this workspace uses (`Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, the `criterion_group!`/`criterion_main!`
//! macros).
//!
//! Instead of criterion's full statistical machinery, each benchmark is warmed
//! up briefly and then timed over a fixed number of sampled batches; the
//! median per-iteration time is printed. `--bench` / `--test` CLI flags from
//! `cargo bench` / `cargo test` are accepted; under `cargo test` (or with
//! `CRITERION_QUICK=1`) each benchmark runs a single iteration so the bench
//! targets double as smoke tests.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id made of the parameter rendering alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    quick: bool,
    samples: usize,
    last_nanos_per_iter: f64,
}

impl Bencher {
    /// Runs `routine` repeatedly and records its median per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.quick {
            std::hint::black_box(routine());
            self.last_nanos_per_iter = f64::NAN;
            return;
        }
        // Warm-up: run until ~20ms of work or 3 iterations, whichever first.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u32;
        while warmup_iters < 3 || warmup_start.elapsed() < Duration::from_millis(20) {
            std::hint::black_box(routine());
            warmup_iters += 1;
            if warmup_iters >= 1000 {
                break;
            }
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        // Choose a batch size so each sample takes ≈10ms.
        let batch = ((0.01 / per_iter.max(1e-9)).ceil() as u64).clamp(1, 1_000_000);
        let mut samples: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            samples.push(start.elapsed().as_secs_f64() / batch as f64);
        }
        samples.sort_by(f64::total_cmp);
        self.last_nanos_per_iter = samples[samples.len() / 2] * 1e9;
    }
}

fn format_time(nanos: f64) -> String {
    if nanos.is_nan() {
        "smoke-run".to_string()
    } else if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1e3)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1e6)
    } else {
        format!("{:.3} s", nanos / 1e9)
    }
}

/// The benchmark manager.
pub struct Criterion {
    quick: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        // `cargo bench` passes --bench; `cargo test` passes --test. Any other
        // free argument acts as a name filter, like criterion's CLI.
        let quick = args.iter().any(|a| a == "--test")
            || std::env::var("CRITERION_QUICK")
                .map(|v| v == "1")
                .unwrap_or(false);
        let filter = args.iter().skip(1).find(|a| !a.starts_with('-')).cloned();
        Criterion { quick, filter }
    }
}

impl Criterion {
    fn should_run(&self, label: &str) -> bool {
        self.filter
            .as_deref()
            .map(|f| label.contains(f))
            .unwrap_or(true)
    }

    fn run_one(&mut self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        if !self.should_run(label) {
            return;
        }
        let mut bencher = Bencher {
            quick: self.quick,
            samples: 11,
            last_nanos_per_iter: f64::NAN,
        };
        f(&mut bencher);
        println!(
            "{label:<50} {:>14}",
            format_time(bencher.last_nanos_per_iter)
        );
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        self.run_one(name, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's sample count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        self.criterion.run_one(&label, &mut f);
        self
    }

    /// Runs one benchmark that receives a reference to its input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
