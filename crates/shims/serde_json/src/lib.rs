//! Offline JSON front-end for the `serde` shim: prints and parses the shim's
//! [`serde::Value`] data model with the usual `to_string` / `to_string_pretty`
//! / `from_str` entry points.

#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Serialize, Value};

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any shim-deserializable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => {
            if v.is_finite() {
                // `{:?}` is Rust's shortest round-trip float formatting; it is
                // valid JSON for all finite values.
                out.push_str(&format!("{v:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_sequence(out, items.iter(), items.len(), indent, depth, false),
        Value::Map(entries) => {
            write_map_entries(out, entries, indent, depth);
        }
    }
}

fn write_sequence<'a, I: Iterator<Item = &'a Value>>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    _is_map: bool,
) {
    if len == 0 {
        out.push_str("[]");
        return;
    }
    out.push('[');
    for (index, item) in items.enumerate() {
        if index > 0 {
            out.push(',');
        }
        newline_indent(out, indent, depth + 1);
        write_value(out, item, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push(']');
}

fn write_map_entries(
    out: &mut String,
    entries: &[(String, Value)],
    indent: Option<usize>,
    depth: usize,
) {
    if entries.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push('{');
    for (index, (key, item)) in entries.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        newline_indent(out, indent, depth + 1);
        write_string(out, key);
        out.push(':');
        if indent.is_some() {
            out.push(' ');
        }
        write_value(out, item, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push('}');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') => {
                if self.consume_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            Some(b't') => {
                if self.consume_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.consume_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected input {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let code = self.unicode_escape()?;
                            out.push(code);
                            continue;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, Error> {
        // self.pos is at the 'u'.
        let hex4 = |parser: &mut Self| -> Result<u32, Error> {
            parser.pos += 1; // consume 'u'
            let digits = parser
                .bytes
                .get(parser.pos..parser.pos + 4)
                .ok_or_else(|| Error::new("truncated \\u escape"))?;
            let s = std::str::from_utf8(digits).map_err(|_| Error::new("bad \\u escape"))?;
            let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("bad \\u escape"))?;
            parser.pos += 4;
            Ok(v)
        };
        let high = hex4(self)?;
        if (0xD800..0xDC00).contains(&high) {
            // Surrogate pair: expect \uXXXX low surrogate.
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                if self.peek() == Some(b'u') {
                    let low = hex4(self)?;
                    let code = 0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00);
                    return char::from_u32(code).ok_or_else(|| Error::new("bad surrogate pair"));
                }
            }
            return Err(Error::new("lone high surrogate"));
        }
        char::from_u32(high).ok_or_else(|| Error::new("bad \\u escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Value::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("bad number {text:?}")))
    }
}
