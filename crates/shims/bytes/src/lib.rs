//! Offline subset of the `bytes` crate: the `Buf`/`BufMut` traits for the
//! primitives the wire format uses (big-endian, matching upstream `bytes`)
//! plus simple `Bytes`/`BytesMut` containers backed by `Vec<u8>`.

#![forbid(unsafe_code)]

use std::ops::Deref;

/// Read-side cursor over a byte slice.
pub trait Buf {
    /// Bytes remaining to be read.
    fn remaining(&self) -> usize;

    /// `true` if any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads the next byte, advancing the cursor.
    fn get_u8(&mut self) -> u8;

    /// Copies `n` bytes into `dst`, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_be_bytes(raw)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_be_bytes(raw)
    }

    /// Reads a big-endian `f32`.
    fn get_f32(&mut self) -> f32 {
        f32::from_bits(self.get_u32())
    }

    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let (first, rest) = self.split_first().expect("buffer underflow");
        *self = rest;
        *first
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, rest) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = rest;
    }
}

/// Write-side byte sink.
pub trait BufMut {
    /// Appends a raw byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, value: u8) {
        self.put_slice(&[value]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, value: u32) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, value: u64) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian `f32`.
    fn put_f32(&mut self, value: f32) {
        self.put_u32(value.to_bits());
    }

    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, value: f64) {
        self.put_u64(value.to_bits());
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Immutable byte container.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Copies a slice into a new container.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes { data: src.to_vec() }
    }

    /// Number of bytes held.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut, BytesMut};

    #[test]
    fn primitives_round_trip_big_endian() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_f32(1.5);
        buf.put_f64(-2.25);
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.remaining(), 1 + 4 + 8);
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_f32(), 1.5);
        assert_eq!(cursor.get_f64(), -2.25);
        assert!(!cursor.has_remaining());
    }
}
