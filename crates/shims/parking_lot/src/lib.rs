//! Offline subset of `parking_lot`: `Mutex` and `RwLock` with the
//! non-poisoning API, implemented over the std primitives (poison is
//! propagated by unwrapping, which matches parking_lot's behaviour of never
//! poisoning in the absence of panics).

#![forbid(unsafe_code)]

use std::sync;

/// Non-poisoning mutex.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
