//! Model synchronization primitives: lookalikes for `std::sync::Mutex`,
//! `std::sync::Condvar` and the `std::sync::atomic` types whose every
//! operation is a schedule point of the exploring scheduler.
//!
//! All of these may only be constructed and used *inside* a closure running
//! under [`crate::model`]; outside one they panic.

use crate::{
    acquire_mutex, current_ctx, register_condvar, register_mutex, release_mutex, schedule_point,
    wait_for_turn, Block, SchedState, Status,
};
use std::cell::UnsafeCell;
use std::sync::LockResult;

pub use std::sync::Arc;

/// A model mutex. API mirrors `std::sync::Mutex` (no poisoning: `lock`
/// always returns `Ok`).
pub struct Mutex<T> {
    id: usize,
    state: Arc<SchedState>,
    data: UnsafeCell<T>,
}

// SAFETY: the scheduler runs exactly one model thread at a time and `lock`
// grants `data` access only to the recorded holder, so sending/sharing the
// mutex across the model's OS threads upholds `T`'s aliasing rules exactly
// like `std::sync::Mutex` does; `T: Send` is required for the same reason.
unsafe impl<T: Send> Send for Mutex<T> {}
// SAFETY: see the `Send` impl above — access to `data` is serialised by the
// model scheduler, which is what `Sync` requires.
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Creates a model mutex (must run inside [`crate::model`]).
    pub fn new(value: T) -> Self {
        let ctx = current_ctx();
        let id = register_mutex(&ctx.state);
        Mutex {
            id,
            state: ctx.state,
            data: UnsafeCell::new(value),
        }
    }

    /// Acquires the mutex, parking this model thread while it is held
    /// elsewhere. A schedule point.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let ctx = current_ctx();
        schedule_point();
        acquire_mutex(&self.state, ctx.tid, self.id);
        Ok(MutexGuard { mutex: self })
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").field("id", &self.id).finish()
    }
}

/// RAII guard for a [`Mutex`]; releasing it wakes blocked lock-waiters.
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: this guard is the recorded holder of the mutex, and the
        // scheduler runs one model thread at a time, so no other reference
        // to the data can exist while the guard lives.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref` — holder exclusivity plus one-at-a-time
        // model execution make this the only live reference.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        release_mutex(&self.mutex.state, self.mutex.id);
    }
}

/// A model condition variable. No spurious wakeups; `notify_one` wakes the
/// longest waiter (FIFO).
pub struct Condvar {
    id: usize,
    state: Arc<SchedState>,
}

impl Condvar {
    /// Creates a model condvar (must run inside [`crate::model`]).
    pub fn new() -> Self {
        let ctx = current_ctx();
        let id = register_condvar(&ctx.state);
        Condvar {
            id,
            state: ctx.state,
        }
    }

    /// Atomically releases the guard's mutex and parks until notified, then
    /// reacquires the mutex. A schedule point.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let ctx = current_ctx();
        let mutex = guard.mutex;
        assert!(
            Arc::ptr_eq(&self.state, &mutex.state),
            "condvar and mutex belong to different models"
        );
        // Dropping the guard releases the mutex (waking lock-waiters); no
        // other thread can run before we register below because this thread
        // stays active until it parks, so the release+wait is atomic.
        drop(guard);
        {
            let mut inner = self.state.lock();
            inner.cond_waiters[self.id].push((ctx.tid, mutex.id));
            inner.threads[ctx.tid] = Status::Blocked(Block::Cond(self.id));
            inner.active = None;
            inner.steps += 1;
            self.state.cvar.notify_all();
            let inner = wait_for_turn(&self.state, inner, ctx.tid);
            drop(inner);
        }
        acquire_mutex(&self.state, ctx.tid, mutex.id);
        Ok(MutexGuard { mutex })
    }

    /// Wakes the longest-waiting thread, if any. A schedule point.
    pub fn notify_one(&self) {
        schedule_point();
        let mut inner = self.state.lock();
        if !inner.cond_waiters[self.id].is_empty() {
            let (tid, _mutex) = inner.cond_waiters[self.id].remove(0);
            inner.threads[tid] = Status::Runnable;
        }
    }

    /// Wakes every waiting thread. A schedule point.
    pub fn notify_all(&self) {
        schedule_point();
        let mut inner = self.state.lock();
        let waiters = std::mem::take(&mut inner.cond_waiters[self.id]);
        for (tid, _mutex) in waiters {
            inner.threads[tid] = Status::Runnable;
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Model atomics: sequentially-consistent lookalikes for `std::sync::atomic`.
/// Each operation is a schedule point; `Ordering` arguments are accepted and
/// ignored (the model explores SC interleavings only).
pub mod atomic {
    use crate::schedule_point;

    pub use std::sync::atomic::Ordering;

    macro_rules! model_atomic {
        ($name:ident, $std:ident, $ty:ty, rmw) => {
            model_atomic!($name, $std, $ty);

            impl $name {
                /// Atomic add; returns the previous value. A schedule point.
                pub fn fetch_add(&self, value: $ty, _order: Ordering) -> $ty {
                    schedule_point();
                    self.0.fetch_add(value, Ordering::SeqCst)
                }

                /// Atomic subtract; returns the previous value. A schedule point.
                pub fn fetch_sub(&self, value: $ty, _order: Ordering) -> $ty {
                    schedule_point();
                    self.0.fetch_sub(value, Ordering::SeqCst)
                }

                /// Atomic max; returns the previous value. A schedule point.
                pub fn fetch_max(&self, value: $ty, _order: Ordering) -> $ty {
                    schedule_point();
                    self.0.fetch_max(value, Ordering::SeqCst)
                }
            }
        };
        ($name:ident, $std:ident, $ty:ty) => {
            /// Model counterpart of the same-named `std::sync::atomic` type.
            #[derive(Debug, Default)]
            pub struct $name(std::sync::atomic::$std);

            impl $name {
                /// Creates the atomic (allowed outside the model; the value
                /// only becomes shared state once threads touch it).
                pub fn new(value: $ty) -> Self {
                    $name(std::sync::atomic::$std::new(value))
                }

                /// Atomic load. A schedule point.
                pub fn load(&self, _order: Ordering) -> $ty {
                    schedule_point();
                    self.0.load(Ordering::SeqCst)
                }

                /// Atomic store. A schedule point.
                pub fn store(&self, value: $ty, _order: Ordering) {
                    schedule_point();
                    self.0.store(value, Ordering::SeqCst)
                }

                /// Atomic swap; returns the previous value. A schedule point.
                pub fn swap(&self, value: $ty, _order: Ordering) -> $ty {
                    schedule_point();
                    self.0.swap(value, Ordering::SeqCst)
                }

                /// Atomic compare-exchange. A schedule point.
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$ty, $ty> {
                    schedule_point();
                    self.0
                        .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                }
            }
        };
    }

    model_atomic!(AtomicU64, AtomicU64, u64, rmw);
    model_atomic!(AtomicUsize, AtomicUsize, usize, rmw);
    model_atomic!(AtomicBool, AtomicBool, bool);
}
