//! Model threads: spawn/join lookalikes for `std::thread` whose scheduling
//! is decided by the exploring scheduler.

use crate::{current_ctx, schedule_point, thread_shell, Block, SchedState, Status};
use std::sync::{Arc, Mutex as StdMutex};

/// Handle to a spawned model thread. Unlike `std::thread::JoinHandle`,
/// [`JoinHandle::join`] returns `T` directly: a panicking model thread fails
/// the whole execution, so join never observes a panicked child.
pub struct JoinHandle<T> {
    tid: usize,
    state: Arc<SchedState>,
    result: Arc<StdMutex<Option<T>>>,
}

/// Spawns a model thread running `body` (must run inside [`crate::model`]).
/// A schedule point: the child becomes runnable immediately.
pub fn spawn<F, T>(body: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let ctx = current_ctx();
    let state = ctx.state;
    let result: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
    let tid;
    {
        let mut inner = state.lock();
        tid = inner.threads.len();
        inner.threads.push(Status::Runnable);
        let shell_state = Arc::clone(&state);
        let shell_result = Arc::clone(&result);
        let handle = std::thread::Builder::new()
            .name(format!("interleave-{tid}"))
            .spawn(move || {
                thread_shell(shell_state, tid, move || {
                    let value = body();
                    *shell_result
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(value);
                })
            })
            .expect("failed to spawn model thread");
        inner.os_handles.push(handle);
    }
    schedule_point();
    JoinHandle { tid, state, result }
}

impl<T> JoinHandle<T> {
    /// Blocks this model thread until the child finishes, then returns its
    /// value. A schedule point.
    pub fn join(self) -> T {
        let ctx = current_ctx();
        schedule_point();
        loop {
            let mut inner = self.state.lock();
            if inner.threads[self.tid] == Status::Finished {
                drop(inner);
                break;
            }
            inner.threads[ctx.tid] = Status::Blocked(Block::Join(self.tid));
            inner.active = None;
            inner.steps += 1;
            self.state.cvar.notify_all();
            let inner = crate::wait_for_turn(&self.state, inner, ctx.tid);
            drop(inner);
        }
        self.result
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .take()
            .expect("joined model thread produced no value")
    }
}

/// A bare schedule point: lets any other runnable thread be scheduled.
pub fn yield_now() {
    schedule_point();
}
