//! Loom-style bounded model checker for the workspace's lock-free and
//! channel-based concurrency cores.
//!
//! The shim provides drop-in lookalikes for the synchronization vocabulary the
//! workspace actually uses — [`sync::Mutex`], [`sync::Condvar`],
//! [`sync::atomic`], [`thread::spawn`] — whose every operation is a *schedule
//! point*: the calling model thread parks and a central scheduler decides who
//! runs next. [`model`] (or a tuned [`Builder`]) then runs the closure under
//! **every** interleaving of those schedule points up to a context-switch
//! (preemption) bound, via depth-first search with backtracking. Only one
//! model thread ever executes at a time, so the exploration is of
//! sequentially-consistent interleavings; `Ordering` arguments are accepted
//! and intentionally ignored.
//!
//! Failures are deterministic and replayable: an assertion failure, panic, or
//! deadlock under some schedule reports that schedule as a seed string
//! (`"0-0-1-2"`, one branch choice per decision point) and [`replay`] re-runs
//! exactly that schedule for debugging.
//!
//! Scope and honest limits:
//! * sequential consistency only — no weak-memory reorderings are explored;
//! * no spurious condvar wakeups; `notify_one` wakes the longest waiter;
//! * exhaustive **up to the preemption bound** (2 by default), the classic
//!   CHESS-style bound: most concurrency bugs manifest with ≤ 2 preemptions.

#![deny(unsafe_op_in_unsafe_fn)]

use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

pub mod sync;
pub mod thread;

/// Sentinel panic payload used to unwind model threads when an execution is
/// being torn down after a failure elsewhere. Never reported as a failure.
struct Abort;

/// What a model thread is currently doing, from the scheduler's view.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    Blocked(Block),
    Finished,
}

/// Why a model thread is blocked.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Block {
    /// Waiting to acquire model mutex `id`.
    Lock(usize),
    /// Waiting on model condvar `id`.
    Cond(usize),
    /// Waiting for model thread `tid` to finish.
    Join(usize),
}

/// One branch point in a schedule: which of `candidates` runnable threads ran.
#[derive(Clone, Copy, Debug)]
struct Decision {
    /// Index into the (deterministically ordered) candidate list.
    chosen: usize,
    /// Number of candidates at this point.
    candidates: usize,
    /// `true` when the previously running thread was *not* runnable here, so
    /// any choice is a free (non-preemptive) context switch.
    free: bool,
    /// Preemptions already spent strictly before this decision.
    preemptions_before: usize,
}

struct SchedInner {
    threads: Vec<Status>,
    /// The one model thread allowed to run, if any.
    active: Option<usize>,
    /// Set on failure; all parked threads unwind with [`Abort`].
    abort: bool,
    failure: Option<String>,
    /// `holder` per model mutex.
    mutexes: Vec<Option<usize>>,
    /// FIFO waiter queues per model condvar: `(tid, mutex_id)`.
    cond_waiters: Vec<Vec<(usize, usize)>>,
    os_handles: Vec<std::thread::JoinHandle<()>>,
    /// The schedule being executed: replayed up to `cursor`, extended past it.
    decisions: Vec<Decision>,
    cursor: usize,
    /// Replay mode: forced branch choices (seed), overriding DFS.
    forced: Option<Vec<usize>>,
    last_run: Option<usize>,
    preemptions: usize,
    /// Total schedule points taken, for the exploration report.
    steps: usize,
}

struct SchedState {
    inner: StdMutex<SchedInner>,
    cvar: StdCondvar,
}

impl SchedState {
    fn new(decisions: Vec<Decision>, forced: Option<Vec<usize>>) -> Self {
        SchedState {
            inner: StdMutex::new(SchedInner {
                threads: Vec::new(),
                active: None,
                abort: false,
                failure: None,
                mutexes: Vec::new(),
                cond_waiters: Vec::new(),
                os_handles: Vec::new(),
                decisions,
                cursor: 0,
                forced,
                last_run: None,
                preemptions: 0,
                steps: 0,
            }),
            cvar: StdCondvar::new(),
        }
    }

    fn lock(&self) -> StdMutexGuard<'_, SchedInner> {
        // A model thread can only panic *outside* this lock (all panics are
        // raised after the guard is dropped), so poison is unreachable; keep
        // the recovery anyway so teardown never double-panics.
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Per-OS-thread pointer back to the scheduler: which execution this thread
/// belongs to and which model thread it is.
#[derive(Clone)]
struct Ctx {
    state: Arc<SchedState>,
    tid: usize,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

fn current_ctx() -> Ctx {
    CTX.with(|c| c.borrow().clone())
        .expect("interleave primitives may only be used inside interleave::model")
}

/// Parks the calling model thread until the scheduler hands it the turn.
/// `guard` must already hold the scheduler lock.
fn wait_for_turn<'a>(
    state: &'a SchedState,
    mut guard: StdMutexGuard<'a, SchedInner>,
    tid: usize,
) -> StdMutexGuard<'a, SchedInner> {
    loop {
        if guard.abort {
            drop(guard);
            panic::panic_any(Abort);
        }
        if guard.active == Some(tid) {
            return guard;
        }
        guard = state
            .cvar
            .wait(guard)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
    }
}

/// Yields the turn back to the scheduler with the given status and parks
/// until rescheduled. The heart of every schedule point.
fn relinquish(state: &SchedState, tid: usize, status: Status) {
    let mut guard = state.lock();
    guard.threads[tid] = status;
    guard.active = None;
    guard.steps += 1;
    state.cvar.notify_all();
    let guard = wait_for_turn(state, guard, tid);
    drop(guard);
}

/// A schedule point: any other runnable thread may be scheduled here.
fn schedule_point() {
    let ctx = current_ctx();
    relinquish(&ctx.state, ctx.tid, Status::Runnable);
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<opaque panic payload>".to_string()
    }
}

/// Marks `tid` finished, wakes its joiners, and returns the turn.
fn finish_thread(state: &SchedState, tid: usize, failure: Option<String>) {
    let mut guard = state.lock();
    if let Some(message) = failure {
        if guard.failure.is_none() {
            guard.failure = Some(message);
        }
        guard.abort = true;
    }
    guard.threads[tid] = Status::Finished;
    for status in guard.threads.iter_mut() {
        if *status == Status::Blocked(Block::Join(tid)) {
            *status = Status::Runnable;
        }
    }
    guard.active = None;
    state.cvar.notify_all();
}

/// Runs `body` as model thread `tid`: waits for its first turn, contains any
/// panic, and reports back to the scheduler.
fn thread_shell(state: Arc<SchedState>, tid: usize, body: impl FnOnce()) {
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            state: Arc::clone(&state),
            tid,
        })
    });
    {
        let guard = state.lock();
        let guard = wait_for_turn(&state, guard, tid);
        drop(guard);
    }
    let result = panic::catch_unwind(AssertUnwindSafe(body));
    let failure = match result {
        Ok(()) => None,
        Err(payload) if payload.downcast_ref::<Abort>().is_some() => None,
        Err(payload) => Some(panic_message(payload.as_ref())),
    };
    finish_thread(&state, tid, failure);
    CTX.with(|c| *c.borrow_mut() = None);
}

/// Orders the runnable set into the candidate list: the previously running
/// thread first (continuing it is the free choice), then ascending thread id.
fn candidate_order(runnable: &[usize], last_run: Option<usize>) -> (Vec<usize>, bool) {
    let mut candidates = runnable.to_vec();
    candidates.sort_unstable();
    if let Some(last) = last_run {
        if let Some(pos) = candidates.iter().position(|&t| t == last) {
            candidates.remove(pos);
            candidates.insert(0, last);
            return (candidates, false);
        }
    }
    (candidates, true)
}

/// Outcome of exploring one model.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Number of distinct schedules executed.
    pub schedules: usize,
    /// Total schedule points taken across all executions.
    pub steps: usize,
}

/// Exploration configuration. [`model`] uses the defaults.
#[derive(Debug, Clone, Copy)]
pub struct Builder {
    /// CHESS-style context-switch bound: maximum number of times a schedule
    /// may switch away from a thread that could have kept running.
    pub preemption_bound: usize,
    /// Hard cap on explored schedules; exceeding it fails the model (the
    /// state space is too large to be a CI gate — shrink the model).
    pub max_schedules: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            preemption_bound: 2,
            max_schedules: 500_000,
        }
    }
}

impl Builder {
    /// Default configuration (preemption bound 2).
    pub fn new() -> Self {
        Builder::default()
    }

    /// Sets the preemption bound.
    pub fn preemption_bound(mut self, bound: usize) -> Self {
        self.preemption_bound = bound;
        self
    }

    /// Sets the schedule-count safety valve.
    pub fn max_schedules(mut self, max: usize) -> Self {
        self.max_schedules = max;
        self
    }

    /// Explores every schedule of `body` up to the preemption bound.
    /// Panics (after printing the replay seed) on the first failing schedule.
    pub fn check<F>(self, body: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
        let mut decisions: Vec<Decision> = Vec::new();
        let mut schedules = 0usize;
        let mut steps = 0usize;
        loop {
            schedules += 1;
            assert!(
                schedules <= self.max_schedules,
                "interleave: exceeded {} schedules — shrink the model or raise max_schedules",
                self.max_schedules
            );
            let (next, failure, run_steps) = execute_once(Arc::clone(&body), decisions, None);
            decisions = next;
            steps += run_steps;
            if let Some(message) = failure {
                let seed = seed_string(&decisions);
                eprintln!("interleave: schedule failed; replay seed \"{seed}\"");
                panic!("model failed under schedule [replay seed \"{seed}\"]: {message}");
            }
            if !advance(&mut decisions, self.preemption_bound) {
                return Report { schedules, steps };
            }
        }
    }
}

/// Explores `body` with the default [`Builder`] (preemption bound 2).
pub fn model<F>(body: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(body)
}

/// Re-runs exactly one schedule, from a seed printed by a failing [`model`]
/// run. Panics with the original failure if the schedule still fails.
pub fn replay<F>(seed: &str, body: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let forced: Vec<usize> = seed
        .split('-')
        .filter(|part| !part.is_empty())
        .map(|part| {
            part.trim()
                .parse::<usize>()
                .unwrap_or_else(|_| panic!("malformed replay seed component {part:?}"))
        })
        .collect();
    let (_, failure, _) = execute_once(Arc::new(body), Vec::new(), Some(forced));
    if let Some(message) = failure {
        panic!("replayed schedule [seed \"{seed}\"] failed: {message}");
    }
}

fn seed_string(decisions: &[Decision]) -> String {
    decisions
        .iter()
        .map(|d| d.chosen.to_string())
        .collect::<Vec<_>>()
        .join("-")
}

/// DFS backtracking: bumps the deepest decision that has an untried branch
/// within the preemption budget, truncating everything after it.
fn advance(decisions: &mut Vec<Decision>, bound: usize) -> bool {
    while let Some(d) = decisions.last_mut() {
        let next = d.chosen + 1;
        // Any non-first choice at a non-free decision preempts the thread
        // that would otherwise have continued, spending one unit of budget.
        if next < d.candidates && (d.free || d.preemptions_before < bound) {
            d.chosen = next;
            return true;
        }
        decisions.pop();
    }
    false
}

/// Runs one schedule to completion; returns the (possibly extended) decision
/// list, the failure if any, and the number of schedule points taken.
fn execute_once(
    body: Arc<dyn Fn() + Send + Sync>,
    decisions: Vec<Decision>,
    forced: Option<Vec<usize>>,
) -> (Vec<Decision>, Option<String>, usize) {
    let state = Arc::new(SchedState::new(decisions, forced));
    {
        let mut guard = state.lock();
        guard.threads.push(Status::Runnable);
        let spawn_state = Arc::clone(&state);
        let handle = std::thread::Builder::new()
            .name("interleave-0".into())
            .spawn(move || thread_shell(Arc::clone(&spawn_state), 0, move || body()))
            .expect("failed to spawn model thread");
        guard.os_handles.push(handle);
    }
    // Scheduler loop: whenever no thread holds the turn, pick the next one
    // according to the schedule (replaying the prefix, extending past it).
    let mut guard = state.lock();
    loop {
        if guard.threads.iter().all(|t| *t == Status::Finished) {
            break;
        }
        if guard.active.is_some() {
            guard = state
                .cvar
                .wait(guard)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            continue;
        }
        if guard.abort {
            // Failure elsewhere: wake every parked thread so it unwinds.
            state.cvar.notify_all();
            guard = state
                .cvar
                .wait(guard)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            continue;
        }
        let runnable: Vec<usize> = guard
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Status::Runnable)
            .map(|(t, _)| t)
            .collect();
        if runnable.is_empty() {
            let stuck: Vec<String> = guard
                .threads
                .iter()
                .enumerate()
                .filter_map(|(t, s)| match s {
                    Status::Blocked(b) => Some(format!("thread {t} blocked on {b:?}")),
                    _ => None,
                })
                .collect();
            guard.failure = Some(format!("deadlock: {}", stuck.join(", ")));
            guard.abort = true;
            continue;
        }
        let (candidates, free) = candidate_order(&runnable, guard.last_run);
        let chosen = if guard.cursor < guard.decisions.len() {
            guard.decisions[guard.cursor].chosen
        } else if let Some(forced) = &guard.forced {
            forced.get(guard.cursor).copied().unwrap_or(0)
        } else {
            0
        };
        let chosen = chosen.min(candidates.len() - 1);
        if guard.cursor >= guard.decisions.len() {
            let preemptions_before = guard.preemptions;
            guard.decisions.push(Decision {
                chosen,
                candidates: candidates.len(),
                free,
                preemptions_before,
            });
        }
        guard.cursor += 1;
        if !free && chosen != 0 {
            guard.preemptions += 1;
        }
        let pick = candidates[chosen];
        guard.active = Some(pick);
        guard.last_run = Some(pick);
        state.cvar.notify_all();
    }
    let handles = std::mem::take(&mut guard.os_handles);
    let failure = guard.failure.take();
    let decisions = std::mem::take(&mut guard.decisions);
    let steps = guard.steps;
    drop(guard);
    for handle in handles {
        let _ = handle.join();
    }
    (decisions, failure, steps)
}

/// Registers a new model mutex; returns its id.
fn register_mutex(state: &SchedState) -> usize {
    let mut guard = state.lock();
    guard.mutexes.push(None);
    guard.mutexes.len() - 1
}

/// Registers a new model condvar; returns its id.
fn register_condvar(state: &SchedState) -> usize {
    let mut guard = state.lock();
    guard.cond_waiters.push(Vec::new());
    guard.cond_waiters.len() - 1
}

/// Acquire path shared by `Mutex::lock` and condvar reacquisition: blocks the
/// model thread until the mutex is free and claims it. Does NOT insert a
/// leading schedule point — callers do that when the acquisition itself is a
/// visible action.
fn acquire_mutex(state: &SchedState, tid: usize, id: usize) {
    loop {
        let mut guard = state.lock();
        if guard.mutexes[id].is_none() {
            guard.mutexes[id] = Some(tid);
            return;
        }
        guard.threads[tid] = Status::Blocked(Block::Lock(id));
        guard.active = None;
        guard.steps += 1;
        state.cvar.notify_all();
        let guard = wait_for_turn(state, guard, tid);
        drop(guard);
    }
}

/// Release path: frees the mutex and makes every lock-waiter runnable (they
/// race to reacquire under the scheduler's next decisions).
fn release_mutex(state: &SchedState, id: usize) {
    let mut guard = state.lock();
    guard.mutexes[id] = None;
    for status in guard.threads.iter_mut() {
        if *status == Status::Blocked(Block::Lock(id)) {
            *status = Status::Runnable;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::atomic::{AtomicUsize as ModelAtomicUsize, Ordering};
    use crate::sync::Mutex;
    use std::sync::Arc;

    #[test]
    fn single_thread_model_runs_once() {
        let report = model(|| {
            let m = Mutex::new(1);
            *m.lock().unwrap() += 1;
            assert_eq!(*m.lock().unwrap(), 2);
        });
        assert_eq!(report.schedules, 1, "no branching without contention");
    }

    #[test]
    fn counter_increments_are_atomic() {
        let report = model(|| {
            let counter = Arc::new(ModelAtomicUsize::new(0));
            let c2 = Arc::clone(&counter);
            let handle = crate::thread::spawn(move || {
                c2.fetch_add(1, Ordering::SeqCst);
            });
            counter.fetch_add(1, Ordering::SeqCst);
            handle.join();
            assert_eq!(counter.load(Ordering::SeqCst), 2);
        });
        assert!(report.schedules > 1, "contention must branch the schedule");
    }

    #[test]
    fn lost_update_is_found_and_replayable() {
        // Classic racy read-modify-write through two separate atomic ops; the
        // checker must find an interleaving where one update is lost.
        fn racy() {
            let cell = Arc::new(ModelAtomicUsize::new(0));
            let c2 = Arc::clone(&cell);
            let handle = crate::thread::spawn(move || {
                let v = c2.load(Ordering::SeqCst);
                c2.store(v + 1, Ordering::SeqCst);
            });
            let v = cell.load(Ordering::SeqCst);
            cell.store(v + 1, Ordering::SeqCst);
            handle.join();
            assert_eq!(cell.load(Ordering::SeqCst), 2, "lost update");
        }
        let failure = std::panic::catch_unwind(|| model(racy));
        let message = panic_message(failure.expect_err("the race must be found").as_ref());
        assert!(message.contains("replay seed"), "failure names its seed");
        // The printed seed must reproduce the failure deterministically.
        let seed = message
            .split('"')
            .nth(1)
            .expect("seed is quoted in the message")
            .to_string();
        let replayed = std::panic::catch_unwind(move || replay(&seed, racy));
        assert!(replayed.is_err(), "replaying the seed reproduces the bug");
    }

    #[test]
    fn deadlock_is_detected() {
        let failure = std::panic::catch_unwind(|| {
            model(|| {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let handle = crate::thread::spawn(move || {
                    let _ga = a2.lock().unwrap();
                    let _gb = b2.lock().unwrap();
                });
                let _gb = b.lock().unwrap();
                let _ga = a.lock().unwrap();
                drop((_gb, _ga));
                handle.join();
            })
        });
        let message = panic_message(failure.expect_err("AB-BA must deadlock").as_ref());
        assert!(message.contains("deadlock"), "got: {message}");
    }

    #[test]
    fn preemption_bound_caps_the_state_space() {
        let tight = Builder::new().preemption_bound(0).check(spawn_two);
        let loose = Builder::new().preemption_bound(2).check(spawn_two);
        assert!(tight.schedules < loose.schedules);

        fn spawn_two() {
            let n = Arc::new(ModelAtomicUsize::new(0));
            let n2 = Arc::clone(&n);
            let handle = crate::thread::spawn(move || {
                n2.fetch_add(1, Ordering::SeqCst);
                n2.fetch_add(1, Ordering::SeqCst);
            });
            n.fetch_add(1, Ordering::SeqCst);
            handle.join();
            assert_eq!(n.load(Ordering::SeqCst), 3);
        }
    }
}
