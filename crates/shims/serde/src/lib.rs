//! Offline, API-compatible subset of `serde` for this workspace.
//!
//! The build container has no crates.io access, so the workspace vendors the
//! thin slice of serde it actually uses: the `Serialize` / `Deserialize`
//! traits, derive macros for plain structs and enums (including
//! `#[serde(skip)]` fields), and a JSON-shaped [`Value`] data model that
//! `serde_json` (the sibling shim) prints and parses.
//!
//! The data model is deliberately simple: every serializable type lowers to a
//! [`Value`] tree and every deserializable type is rebuilt from one. That is
//! enough for the checkpoints, reports and figures this workspace round-trips,
//! while keeping the shim a few hundred lines.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// JSON-shaped intermediate value every serializable type lowers to.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (printed without a decimal point).
    U64(u64),
    /// Signed integer (printed without a decimal point).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object; insertion order is preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The entries of an object, if this value is one.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements of an array, if this value is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Numeric coercion: any of the three number variants as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric coercion to `u64` (accepts integral floats).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            Value::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// Numeric coercion to `i64` (accepts integral floats).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            Value::I64(v) => Some(v),
            Value::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            _ => None,
        }
    }

    /// The string payload, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this value is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// Looks up `key` in the entry list of an object value (used by derived code).
pub fn map_get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn custom<T: std::fmt::Display>(message: T) -> Self {
        DeError {
            message: message.to_string(),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// A type that can lower itself into the [`Value`] data model.
pub trait Serialize {
    /// Lowers `self` to a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// A type that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw = value
                    .as_u64()
                    .ok_or_else(|| DeError::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw = value
                    .as_i64()
                    .ok_or_else(|| DeError::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .ok_or_else(|| DeError::custom("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value
            .as_f64()
            .ok_or_else(|| DeError::custom("expected f32"))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_bool()
            .ok_or_else(|| DeError::custom("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let s = value
            .as_str()
            .ok_or_else(|| DeError::custom("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

// Borrowed strings can be serialized but not rebuilt; the error only fires if
// something actually tries to deserialize one (nothing in this workspace does).
impl Deserialize for &'static str {
    fn from_value(_value: &Value) -> Result<Self, DeError> {
        Err(DeError::custom(
            "cannot deserialize into a borrowed &'static str",
        ))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_seq()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $index:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$index.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let seq = value.as_seq().ok_or_else(|| DeError::custom("expected tuple array"))?;
                let expected = [$($index),+].len();
                if seq.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected tuple of length {expected}, got {}",
                        seq.len()
                    )));
                }
                Ok(($($name::from_value(&seq[$index])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// A type usable as a map key: rendered to / parsed from an object key
/// string, the way `serde_json` stringifies integer keys.
pub trait MapKey: Sized {
    /// Renders the key as an object-key string.
    fn to_key(&self) -> String;
    /// Parses the key back from an object-key string.
    fn from_key(key: &str) -> Result<Self, DeError>;
}

macro_rules! impl_map_key_numeric {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse::<$t>()
                    .map_err(|_| DeError::custom(concat!("bad map key for ", stringify!($t))))
            }
        }
    )*};
}

impl_map_key_numeric!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_string())
    }
}

impl<K: MapKey, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_map()
            .ok_or_else(|| DeError::custom("expected object for map"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: MapKey, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K: MapKey + std::hash::Hash + Eq, V: Deserialize> Deserialize
    for std::collections::HashMap<K, V>
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_map()
            .ok_or_else(|| DeError::custom("expected object for map"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}
