//! Offline subset of `crossbeam`: multi-producer multi-consumer channels.
//!
//! Two flavors mirror `crossbeam-channel`:
//!
//! * [`channel::unbounded`] — a growable FIFO; `send` never blocks.
//! * [`channel::bounded`] — a fixed-capacity ring buffer pre-allocated at
//!   construction; `send` blocks while the channel is full and performs **no
//!   heap allocation**, which is what the persistent GEMM worker pool in
//!   `capes-tensor` relies on for its allocation-free dispatch path.
//!
//! Both halves are cloneable (MPMC), matching the upstream crate.

#![forbid(unsafe_code)]

/// MPMC channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        /// `Some(cap)` for bounded channels; `None` for unbounded.
        capacity: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Error returned when every receiver has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders have been dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    fn new_channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: match capacity {
                    // The ring never grows past `cap`, so this is the only
                    // allocation the channel ever performs.
                    Some(cap) => VecDeque::with_capacity(cap.max(1)),
                    None => VecDeque::new(),
                },
                capacity,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_channel(None)
    }

    /// Creates a bounded channel whose buffer is allocated once, up front.
    /// Sending blocks while `cap` messages are in flight. A capacity of zero
    /// is rounded up to one (the shim has no rendezvous mode).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_channel(Some(cap.max(1)))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Messages currently queued (matches `crossbeam-channel`; a
        /// snapshot — other threads may change it immediately).
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        /// `true` when no message is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Sends a message, blocking while a bounded channel is full. Fails
        /// only if every receiver was dropped.
        pub fn send(&self, message: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(message));
                }
                let full = state.capacity.is_some_and(|cap| state.queue.len() >= cap);
                if !full {
                    state.queue.push_back(message);
                    drop(state);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                state = self.shared.not_full.wait(state).unwrap();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Messages currently queued (snapshot, like [`Sender::len`]).
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        /// `true` when no message is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().unwrap();
            match state.queue.pop_front() {
                Some(v) => {
                    drop(state);
                    self.shared.not_full.notify_one();
                    Ok(v)
                }
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if let Some(v) = state.queue.pop_front() {
                    drop(state);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.not_empty.wait(state).unwrap();
            }
        }

        /// Drains currently queued messages without blocking.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.try_recv().ok())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, TryRecvError};
    use std::thread;
    use std::time::Duration;

    #[test]
    fn round_trip_and_clone() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        drop(tx2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn bounded_round_trip() {
        let (tx, rx) = bounded(2);
        tx.send(10).unwrap();
        tx.send(20).unwrap();
        assert_eq!(rx.recv().unwrap(), 10);
        assert_eq!(rx.recv().unwrap(), 20);
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn bounded_send_blocks_until_capacity_frees() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let sender = thread::spawn(move || {
            // Blocks until the main thread drains the first message.
            tx.send(2).unwrap();
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        sender.join().unwrap();
    }

    #[test]
    fn receiver_clone_is_mpmc() {
        let (tx, rx) = bounded(8);
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let a = rx.recv().unwrap();
        let b = rx2.recv().unwrap();
        assert_eq!(a + b, 3);
    }

    #[test]
    fn send_fails_when_receivers_gone() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn cross_thread_ping_pong() {
        let (tx, rx) = bounded(4);
        let worker = thread::spawn(move || {
            let mut total = 0u64;
            while let Ok(v) = rx.recv() {
                total += v;
            }
            total
        });
        for i in 0..100u64 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(worker.join().unwrap(), 4950);
    }
}
