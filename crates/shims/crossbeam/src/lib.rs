//! Offline subset of `crossbeam`: multi-producer channels built on
//! `std::sync::mpsc`. Only the `channel::unbounded` API surface this
//! workspace uses is provided.

/// MPMC-ish channels (MPSC underneath, which is all this workspace needs).
pub mod channel {
    use std::sync::mpsc;

    /// Sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// Error returned when the receiving half has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders have been dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only if the receiver was dropped.
        pub fn send(&self, message: T) -> Result<(), SendError<T>> {
            self.inner.send(message).map_err(|e| SendError(e.0))
        }
    }

    impl<T> Receiver<T> {
        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Drains currently queued messages without blocking.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.try_recv().ok())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};

    #[test]
    fn round_trip_and_clone() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        drop(tx2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }
}
