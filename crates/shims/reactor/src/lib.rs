//! Offline subset of the `mio` crate: a level-triggered epoll reactor.
//!
//! The container this workspace builds in has no crates.io access, so the
//! async-I/O layer `capes-net` needs is provided as a shim with the same
//! shape as `mio`'s core: a [`Poll`] instance that file descriptors are
//! registered with under a caller-chosen [`Token`], an [`Events`] buffer
//! filled by [`Poll::poll`], a cross-thread [`Waker`], and a [`TimerQueue`]
//! that turns deadlines into poll timeouts.
//!
//! The implementation talks to the kernel directly through `extern "C"`
//! declarations (std already links libc; the `libc` crate is not vendored).
//! Everything is **level-triggered**: an fd keeps reporting readiness until
//! the condition is drained, which is the simplest semantics for the frame
//! reassembly loop layered on top. Linux-only, like the container.

#![deny(unsafe_op_in_unsafe_fn)]
#![cfg(target_os = "linux")]

use std::collections::BinaryHeap;
use std::io;
use std::os::fd::RawFd;
use std::time::{Duration, Instant};

mod ffi {
    use std::os::raw::c_int;

    /// Matches the kernel/glibc x86-64 layout: `epoll_event` is packed so the
    /// 64-bit data member sits directly after the 32-bit mask.
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const O_NONBLOCK: c_int = 0o4000;
    pub const O_CLOEXEC: c_int = 0o2000000;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn pipe2(pipefd: *mut c_int, flags: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
    }
}

/// Caller-chosen identifier attached to a registration; echoed back in every
/// readiness [`Event`] for that fd.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// Which readiness conditions a registration watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u32);

impl Interest {
    /// Readable data (or a peer close — `EPOLLRDHUP` is always watched so
    /// half-closed connections surface as readable-with-`is_read_closed`).
    pub const READABLE: Interest = Interest(ffi::EPOLLIN | ffi::EPOLLRDHUP);
    /// Writable without blocking.
    pub const WRITABLE: Interest = Interest(ffi::EPOLLOUT);

    /// Combines two interests. The name mirrors `mio::Interest::add`,
    /// which is likewise an inherent method rather than `std::ops::Add`.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// `true` if this interest includes readability.
    pub fn is_readable(self) -> bool {
        self.0 & ffi::EPOLLIN != 0
    }

    /// `true` if this interest includes writability.
    pub fn is_writable(self) -> bool {
        self.0 & ffi::EPOLLOUT != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;

    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

/// One readiness notification: which [`Token`] and which conditions.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    bits: u32,
    token: Token,
}

impl Event {
    /// The token the fd was registered under.
    pub fn token(&self) -> Token {
        self.token
    }

    /// The fd has readable data (or the peer closed; see
    /// [`Event::is_read_closed`]).
    pub fn is_readable(&self) -> bool {
        self.bits & (ffi::EPOLLIN | ffi::EPOLLRDHUP | ffi::EPOLLHUP) != 0
    }

    /// The fd can be written without blocking.
    pub fn is_writable(&self) -> bool {
        self.bits & ffi::EPOLLOUT != 0
    }

    /// An error condition is pending on the fd (read it out with
    /// `take_error`, or just close).
    pub fn is_error(&self) -> bool {
        self.bits & ffi::EPOLLERR != 0
    }

    /// The peer closed its write half (or the whole connection); a read will
    /// drain whatever is buffered and then return 0.
    pub fn is_read_closed(&self) -> bool {
        self.bits & (ffi::EPOLLRDHUP | ffi::EPOLLHUP) != 0
    }
}

/// Buffer of readiness notifications filled by [`Poll::poll`].
pub struct Events {
    raw: Vec<ffi::EpollEvent>,
    len: usize,
}

impl Events {
    /// A buffer that can carry up to `capacity` events per poll call.
    pub fn with_capacity(capacity: usize) -> Events {
        let capacity = capacity.max(1);
        Events {
            raw: vec![ffi::EpollEvent { events: 0, data: 0 }; capacity],
            len: 0,
        }
    }

    /// Events delivered by the last poll.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the last poll delivered nothing (timeout).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates the events of the last poll.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.raw[..self.len].iter().map(|raw| {
            // Copy the packed fields out before use (unaligned reads).
            let bits = raw.events;
            let data = raw.data;
            Event {
                bits,
                token: Token(data as usize),
            }
        })
    }
}

/// The reactor core: an epoll instance fds are registered with.
pub struct Poll {
    epfd: RawFd,
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

impl Poll {
    /// Creates a new reactor.
    pub fn new() -> io::Result<Poll> {
        // SAFETY: epoll_create1 takes no pointers; flags are valid constants.
        let epfd = cvt(unsafe { ffi::epoll_create1(ffi::EPOLL_CLOEXEC) })?;
        Ok(Poll { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        let mut event = ffi::EpollEvent {
            events: interest.0,
            data: token.0 as u64,
        };
        // SAFETY: `event` is a live, properly initialized EpollEvent for the
        // duration of the call; the kernel validates the fds.
        cvt(unsafe { ffi::epoll_ctl(self.epfd, op, fd, &mut event) }).map(|_| ())
    }

    /// Starts watching `fd` (which must be non-blocking) for `interest`,
    /// tagging its events with `token`.
    pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.ctl(ffi::EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Changes the interest set (and/or token) of an already-registered fd.
    pub fn reregister(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.ctl(ffi::EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Stops watching `fd`.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        // A non-null event pointer keeps pre-2.6.9 kernel semantics happy.
        let mut event = ffi::EpollEvent { events: 0, data: 0 };
        // SAFETY: `event` is live across the call; DEL ignores its contents.
        cvt(unsafe { ffi::epoll_ctl(self.epfd, ffi::EPOLL_CTL_DEL, fd, &mut event) }).map(|_| ())
    }

    /// Blocks until at least one registered fd is ready, the timeout elapses
    /// (`None` waits indefinitely), or a [`Waker`] fires. Returns the number
    /// of events written into `events`. `EINTR` is retried internally.
    pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let millis: i32 = match timeout {
            None => -1,
            Some(d) => {
                // Round up so a 100µs deadline does not spin at timeout 0.
                let ms = d.as_millis() + u128::from(d.subsec_nanos() % 1_000_000 != 0);
                ms.try_into().unwrap_or(i32::MAX)
            }
        };
        loop {
            // SAFETY: the out-pointer and capacity describe `events.raw`,
            // which lives across the call.
            let ret = unsafe {
                ffi::epoll_wait(
                    self.epfd,
                    events.raw.as_mut_ptr(),
                    events.raw.len() as i32,
                    millis,
                )
            };
            match cvt(ret) {
                Ok(n) => {
                    events.len = n as usize;
                    return Ok(events.len);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for Poll {
    fn drop(&mut self) {
        // SAFETY: we own `epfd` and never use it after drop.
        unsafe { ffi::close(self.epfd) };
    }
}

/// Cross-thread wake-up for a blocked [`Poll::poll`], built on a non-blocking
/// self-pipe registered with the poll under a caller-chosen token.
pub struct Waker {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl Waker {
    /// Creates a waker and registers its read end with `poll` under `token`;
    /// when another thread calls [`Waker::wake`], the poll returns with a
    /// readable event for that token, which the owner should [`Waker::drain`].
    pub fn new(poll: &Poll, token: Token) -> io::Result<Waker> {
        let mut fds = [0i32; 2];
        // SAFETY: `fds` is a live 2-slot array, exactly what pipe2 writes.
        cvt(unsafe { ffi::pipe2(fds.as_mut_ptr(), ffi::O_NONBLOCK | ffi::O_CLOEXEC) })?;
        let waker = Waker {
            read_fd: fds[0],
            write_fd: fds[1],
        };
        poll.register(waker.read_fd, token, Interest::READABLE)?;
        Ok(waker)
    }

    /// Wakes the poll. Safe to call from any thread, any number of times; a
    /// full pipe means a wake is already pending, which is success.
    pub fn wake(&self) -> io::Result<()> {
        let byte = [1u8];
        // SAFETY: writes one byte from a live one-byte buffer.
        let ret = unsafe { ffi::write(self.write_fd, byte.as_ptr(), 1) };
        if ret == 1 {
            return Ok(());
        }
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::WouldBlock {
            Ok(()) // a wake-up is already queued
        } else {
            Err(err)
        }
    }

    /// Drains queued wake-up bytes so the (level-triggered) readiness clears.
    /// Call when a poll event carries the waker's token.
    pub fn drain(&self) {
        let mut sink = [0u8; 64];
        loop {
            // SAFETY: reads at most `sink.len()` bytes into the live buffer.
            let ret = unsafe { ffi::read(self.read_fd, sink.as_mut_ptr(), sink.len()) };
            if ret <= 0 {
                return;
            }
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: we own both pipe fds and never use them after drop.
        unsafe {
            ffi::close(self.read_fd);
            ffi::close(self.write_fd);
        }
    }
}

// SAFETY: a waker is only written from other threads and read from the poll
// thread; both fds are process-global resources.
unsafe impl Send for Waker {}
// SAFETY: as above — `write(2)` on a pipe is thread-safe.
unsafe impl Sync for Waker {}

/// A min-heap of `(deadline, token)` pairs that converts pending deadlines
/// into [`Poll::poll`] timeouts — the "timers" half of the reactor.
#[derive(Default)]
pub struct TimerQueue {
    heap: BinaryHeap<std::cmp::Reverse<(Instant, Token)>>,
}

impl TimerQueue {
    /// An empty timer queue.
    pub fn new() -> TimerQueue {
        TimerQueue::default()
    }

    /// Schedules `token` to fire at `deadline`.
    pub fn schedule(&mut self, deadline: Instant, token: Token) {
        self.heap.push(std::cmp::Reverse((deadline, token)));
    }

    /// Schedules `token` to fire `delay` from now.
    pub fn schedule_after(&mut self, delay: Duration, token: Token) {
        self.schedule(Instant::now() + delay, token);
    }

    /// The poll timeout that honours the earliest pending deadline: zero if
    /// it already passed, `None` if the queue is empty (wait indefinitely).
    pub fn next_timeout(&self, now: Instant) -> Option<Duration> {
        self.heap
            .peek()
            .map(|std::cmp::Reverse((deadline, _))| deadline.saturating_duration_since(now))
    }

    /// Pops the earliest timer if its deadline has passed.
    pub fn pop_expired(&mut self, now: Instant) -> Option<Token> {
        match self.heap.peek() {
            Some(std::cmp::Reverse((deadline, _))) if *deadline <= now => {
                self.heap.pop().map(|std::cmp::Reverse((_, token))| token)
            }
            _ => None,
        }
    }

    /// Pending timers.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no timers are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::thread;

    const LISTENER: Token = Token(0);
    const CLIENT: Token = Token(1);
    const WAKER: Token = Token(2);

    #[test]
    fn listener_becomes_readable_on_connect() {
        let poll = Poll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poll.register(listener.as_raw_fd(), LISTENER, Interest::READABLE)
            .unwrap();

        let mut events = Events::with_capacity(8);
        // Nothing pending yet: a short poll times out empty.
        poll.poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let event = events.iter().next().expect("accept readiness");
        assert_eq!(event.token(), LISTENER);
        assert!(event.is_readable());
        assert!(listener.accept().is_ok());
    }

    #[test]
    fn stream_readability_is_level_triggered_until_drained() {
        let poll = Poll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        poll.register(server.as_raw_fd(), CLIENT, Interest::READABLE)
            .unwrap();

        client.write_all(b"ping").unwrap();
        let mut events = Events::with_capacity(8);
        // Two polls in a row both report readiness (level-triggered) …
        for _ in 0..2 {
            poll.poll(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(events
                .iter()
                .any(|e| e.token() == CLIENT && e.is_readable()));
        }
        // … until the data is drained.
        let mut buf = [0u8; 16];
        let mut server = &server;
        assert_eq!(server.read(&mut buf).unwrap(), 4);
        poll.poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(!events.iter().any(|e| e.token() == CLIENT));
    }

    #[test]
    fn writable_interest_and_reregister() {
        let poll = Poll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        client.set_nonblocking(true).unwrap();
        poll.register(client.as_raw_fd(), CLIENT, Interest::READABLE)
            .unwrap();
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(!events.iter().any(|e| e.is_writable()));
        // An idle connected socket is writable the moment we ask about it.
        poll.reregister(
            client.as_raw_fd(),
            CLIENT,
            Interest::READABLE | Interest::WRITABLE,
        )
        .unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token() == CLIENT && e.is_writable()));
        // Deregistered fds go silent.
        poll.deregister(client.as_raw_fd()).unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn peer_close_reports_read_closed() {
        let poll = Poll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        poll.register(server.as_raw_fd(), CLIENT, Interest::READABLE)
            .unwrap();
        drop(client);
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let event = events.iter().find(|e| e.token() == CLIENT).unwrap();
        assert!(event.is_readable());
        assert!(event.is_read_closed());
    }

    #[test]
    fn waker_interrupts_an_indefinite_poll() {
        let poll = Poll::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new(&poll, WAKER).unwrap());
        let remote = waker.clone();
        let handle = thread::spawn(move || {
            thread::sleep(Duration::from_millis(50));
            remote.wake().unwrap();
        });
        let mut events = Events::with_capacity(8);
        // No timeout: only the waker can end this poll.
        poll.poll(&mut events, None).unwrap();
        let event = events.iter().next().expect("waker event");
        assert_eq!(event.token(), WAKER);
        waker.drain();
        handle.join().unwrap();
        // Drained: the next poll times out quietly.
        poll.poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
        // Double wake coalesces into (at least) one event, never an error.
        waker.wake().unwrap();
        waker.wake().unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.iter().next().unwrap().token(), WAKER);
        waker.drain();
    }

    #[test]
    fn timer_queue_orders_deadlines_and_computes_timeouts() {
        let mut timers = TimerQueue::new();
        assert!(timers.is_empty());
        let now = Instant::now();
        timers.schedule(now + Duration::from_millis(30), Token(3));
        timers.schedule(now + Duration::from_millis(10), Token(1));
        timers.schedule(now + Duration::from_millis(20), Token(2));
        assert_eq!(timers.len(), 3);
        // The nearest deadline bounds the poll timeout.
        let timeout = timers.next_timeout(now).unwrap();
        assert!(timeout <= Duration::from_millis(10));
        // Nothing has expired yet.
        assert_eq!(timers.pop_expired(now), None);
        // Advance past two deadlines: they pop in order.
        let later = now + Duration::from_millis(25);
        assert_eq!(timers.pop_expired(later), Some(Token(1)));
        assert_eq!(timers.pop_expired(later), Some(Token(2)));
        assert_eq!(timers.pop_expired(later), None);
        assert_eq!(timers.len(), 1);
        // An expired deadline yields a zero timeout, not a negative panic.
        assert_eq!(
            timers.next_timeout(now + Duration::from_secs(1)),
            Some(Duration::ZERO)
        );
    }
}
