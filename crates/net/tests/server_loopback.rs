//! End-to-end exercises of the reactor server over real loopback sockets.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use capes_agents::message::{ActionMessage, PiReport};
use capes_agents::wire::encode_cluster_frame;
use capes_agents::Message;
use capes_net::{read_frame, write_frame, FleetServer, NetConfig};

fn report(cluster: u32, tick: u64, node: usize) -> (Message, Vec<u8>) {
    let message = Message::Report(PiReport {
        tick,
        node,
        total_pis: 8,
        changed: vec![(0, 1.25), (3, -0.5), (7, 1024.0)],
    });
    let frame = encode_cluster_frame(cluster, &message).to_vec();
    (message, frame)
}

/// Waits until `cond` holds or panics after two seconds.
fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(2);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn frames_flow_client_to_ingress_and_back() {
    let (handle, ingress) =
        FleetServer::spawn("127.0.0.1:0", NetConfig::default()).expect("spawn server");
    let mut client = TcpStream::connect(handle.local_addr()).expect("connect");
    client.set_nodelay(true).unwrap();

    // Two frames in one write, a third split across two writes.
    let (m0, f0) = report(0, 1, 0);
    let (m1, f1) = report(0, 1, 1);
    let (m2, f2) = report(0, 2, 0);
    let mut buf = Vec::new();
    capes_net::encode_frame_into(&mut buf, &f0);
    capes_net::encode_frame_into(&mut buf, &f1);
    let mut third = Vec::new();
    capes_net::encode_frame_into(&mut third, &f2);
    client.write_all(&buf).unwrap();
    client.write_all(&third[..3]).unwrap();
    client.flush().unwrap();
    std::thread::sleep(Duration::from_millis(20));
    client.write_all(&third[3..]).unwrap();

    let mut got = Vec::new();
    for _ in 0..3 {
        got.push(ingress.recv_timeout_or_panic());
    }
    assert_eq!(got, vec![(0, m0), (0, m1), (0, m2)]);

    // Downlink: the server learned cluster 0 lives on this connection.
    let action = Message::Action(ActionMessage {
        tick: 2,
        action_index: 5,
        parameter_values: vec![16.0, 4000.0],
    });
    assert!(handle.send(0, &action));
    let mut frame = Vec::new();
    read_frame(&mut client, 1 << 20, &mut frame).unwrap();
    let (cluster, decoded) = capes_agents::wire::decode_cluster_frame(&frame).unwrap();
    assert_eq!((cluster, decoded), (0, action));

    let stats = handle.shutdown();
    assert_eq!(stats.accepted, 1);
    assert_eq!(stats.frames_in, 3);
    assert_eq!(stats.frames_out, 1);
    assert_eq!(stats.decode_errors, 0);
}

#[test]
fn corrupt_frame_closes_only_the_guilty_connection() {
    let config = NetConfig {
        num_clusters: Some(2),
        ..NetConfig::default()
    };
    let (handle, ingress) = FleetServer::spawn("127.0.0.1:0", config).expect("spawn server");
    let mut good = TcpStream::connect(handle.local_addr()).unwrap();
    let mut evil = TcpStream::connect(handle.local_addr()).unwrap();
    wait_for(|| handle.stats().accepted == 2, "both connections accepted");

    // An oversized length prefix: rejected before allocation, connection
    // closed, counted as a decode error.
    evil.write_all(&u32::MAX.to_be_bytes()).unwrap();
    wait_for(
        || handle.stats().decode_errors == 1,
        "evil connection closed",
    );

    // The good connection is unaffected.
    let (m, f) = report(1, 7, 0);
    write_frame(&mut good, &f).unwrap();
    assert_eq!(ingress.recv_timeout_or_panic(), (1, m));

    // The evil socket reads EOF (server closed it).
    let mut probe = [0u8; 1];
    evil.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    assert_eq!(evil.read(&mut probe).unwrap_or(0), 0);

    let stats = handle.shutdown();
    assert_eq!(stats.decode_errors, 1);
    assert_eq!(stats.frames_in, 1);
}

#[test]
fn out_of_range_cluster_is_a_counted_protocol_error() {
    let config = NetConfig {
        num_clusters: Some(2),
        ..NetConfig::default()
    };
    let (handle, _ingress) = FleetServer::spawn("127.0.0.1:0", config).unwrap();
    let mut client = TcpStream::connect(handle.local_addr()).unwrap();
    let (_, f) = report(9, 1, 0);
    write_frame(&mut client, &f).unwrap();
    wait_for(|| handle.stats().decode_errors == 1, "bad cluster rejected");
    let stats = handle.shutdown();
    assert_eq!(stats.frames_in, 0);
}

#[test]
fn slow_client_is_shed_for_backpressure_without_hurting_others() {
    let config = NetConfig {
        // Tiny outbound cap so a non-reading client trips it quickly.
        max_conn_buffered: 512,
        ..NetConfig::default()
    };
    let (handle, ingress) = FleetServer::spawn("127.0.0.1:0", config).unwrap();
    let mut stalled = TcpStream::connect(handle.local_addr()).unwrap();
    let mut healthy = TcpStream::connect(handle.local_addr()).unwrap();
    wait_for(|| handle.stats().accepted == 2, "both connections accepted");

    // Each client identifies its cluster.
    let (_, f0) = report(0, 1, 0);
    let (_, f1) = report(1, 1, 0);
    stalled
        .write_all(&{
            let mut b = Vec::new();
            capes_net::encode_frame_into(&mut b, &f0);
            b
        })
        .unwrap();
    write_frame(&mut healthy, &f1).unwrap();
    for _ in 0..2 {
        ingress.recv_timeout_or_panic();
    }

    // The stalled client never reads. Pump action frames at it until the
    // outbound cap (512 bytes) trips. Each frame is ~40 bytes, and loopback
    // socket buffers absorb the first few hundred KiB, so keep sending.
    let action = Message::Action(ActionMessage {
        tick: 1,
        action_index: 0,
        parameter_values: vec![1.0; 8],
    });
    let mut sheds = 0;
    for _ in 0..100_000 {
        handle.send(0, &action);
        if handle.stats().shed_backpressure == 1 {
            sheds = 1;
            break;
        }
    }
    assert_eq!(sheds, 1, "stalled client was never shed");

    // The healthy connection still round-trips.
    let (m, f) = report(1, 2, 0);
    write_frame(&mut healthy, &f).unwrap();
    assert_eq!(ingress.recv_timeout_or_panic(), (1, m));
    assert!(handle.send(1, &action));
    let mut frame = Vec::new();
    read_frame(&mut healthy, 1 << 20, &mut frame).unwrap();
    let (cluster, decoded) = capes_agents::wire::decode_cluster_frame(&frame).unwrap();
    assert_eq!((cluster, decoded), (1, action));

    // And the stalled socket sees EOF once its kernel buffer drains.
    drop(stalled);
    handle.shutdown();
}

#[test]
fn idle_connections_are_swept() {
    let config = NetConfig {
        idle_timeout: Some(Duration::from_millis(50)),
        ..NetConfig::default()
    };
    let (handle, _ingress) = FleetServer::spawn("127.0.0.1:0", config).unwrap();
    let _client = TcpStream::connect(handle.local_addr()).unwrap();
    wait_for(|| handle.stats().accepted == 1, "connection accepted");
    wait_for(|| handle.stats().shed_idle == 1, "idle connection swept");
    let stats = handle.shutdown();
    assert_eq!(stats.active, 0);
}

/// `recv` with a deadline, panicking with context on timeout — keeps the
/// individual tests free of unwrap-noise.
trait RecvTimeout {
    fn recv_timeout_or_panic(&self) -> (u32, Message);
}

impl RecvTimeout for crossbeam::channel::Receiver<(u32, Message)> {
    fn recv_timeout_or_panic(&self) -> (u32, Message) {
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            match self.try_recv() {
                Ok(v) => return v,
                Err(_) => {
                    assert!(Instant::now() < deadline, "timed out waiting for ingress");
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
    }
}
