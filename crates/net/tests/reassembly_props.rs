//! Property tests: socket frame reassembly is transparent.
//!
//! Whatever way the kernel slices a TCP stream into `read` chunks — every
//! byte boundary, random fragment sizes, interleaved across connections —
//! the messages coming out of [`ConnState`] must be exactly the messages
//! that whole-buffer decoding would produce. And the PR 5 corruption suite
//! (flipped bytes, huge length prefixes, overflowing counts) must stay
//! panic-free and allocation-bounded when it arrives one fragment at a time.

use capes_agents::message::{ActionMessage, Message, PiReport};
use capes_agents::wire::{decode_cluster_frame, encode_cluster_frame};
use capes_net::{encode_frame_into, ConnState, FrameReassembler};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::ControlFlow;

/// A random message of any protocol type (mirrors the fleet wire suite).
fn random_message(rng: &mut StdRng) -> Message {
    match rng.gen_range(0..4u32) {
        0 => {
            let total_pis = rng.gen_range(1..50usize);
            let changed_count = rng.gen_range(0..=total_pis);
            Message::Report(PiReport {
                tick: rng.gen_range(0..u32::MAX as u64),
                node: rng.gen_range(0..16),
                total_pis,
                changed: (0..changed_count)
                    .map(|i| (i as u16, rng.gen_range(-1e3..1e3)))
                    .collect(),
            })
        }
        1 => Message::Objective {
            tick: rng.gen_range(0..u32::MAX as u64),
            node: rng.gen_range(0..16),
            value: rng.gen_range(-1e6..1e6),
        },
        2 => Message::Action(ActionMessage {
            tick: rng.gen_range(0..u32::MAX as u64),
            action_index: rng.gen_range(0..64),
            parameter_values: (0..rng.gen_range(0..5usize))
                .map(|_| rng.gen_range(-1e4..1e4))
                .collect(),
        }),
        _ => Message::WorkloadChange {
            tick: rng.gen_range(0..u64::MAX),
        },
    }
}

/// Length-prefixes a batch of cluster-enveloped messages into one stream,
/// returning the stream and the whole-buffer decodes it should produce.
fn framed_stream(rng: &mut StdRng, clusters: u32, count: usize) -> (Vec<u8>, Vec<(u32, Message)>) {
    let mut stream = Vec::new();
    let mut expected = Vec::new();
    for _ in 0..count {
        let cluster = rng.gen_range(0..clusters);
        let message = random_message(rng);
        let frame = encode_cluster_frame(cluster, &message);
        // The reference decode is the *whole-buffer* path: what the fleet's
        // in-process FrameRouter would see without any socket in between.
        let reference = decode_cluster_frame(&frame).expect("clean frame decodes");
        encode_frame_into(&mut stream, &frame);
        expected.push(reference);
    }
    (stream, expected)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Splitting the stream at EVERY byte boundary yields the same decoded
    /// messages as whole-buffer decoding. (Quadratic in stream length, so
    /// the batch is kept small; the random-chunking test covers scale.)
    #[test]
    fn every_split_point_reassembles_identically(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (stream, expected) = framed_stream(&mut rng, 4, 3);
        for cut in 0..=stream.len() {
            let mut state = ConnState::new(1 << 20);
            let mut got = Vec::new();
            state
                .ingest(&stream[..cut], Some(4), |c, m| got.push((c, m)))
                .expect("clean prefix");
            state
                .ingest(&stream[cut..], Some(4), |c, m| got.push((c, m)))
                .expect("clean suffix");
            prop_assert_eq!(&got, &expected, "split at byte {} diverged", cut);
        }
    }

    /// Random fragment sizes (including empty and one-byte reads) across a
    /// larger batch reassemble to the whole-buffer decode.
    #[test]
    fn random_chunking_reassembles_identically(
        seed in any::<u64>(),
        count in 1usize..40,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (stream, expected) = framed_stream(&mut rng, 8, count);
        let mut state = ConnState::new(1 << 20);
        let mut got = Vec::new();
        let mut offset = 0;
        while offset < stream.len() {
            let take = rng.gen_range(0..=64usize).min(stream.len() - offset);
            state
                .ingest(&stream[offset..offset + take], Some(8), |c, m| got.push((c, m)))
                .expect("clean stream");
            offset += take;
        }
        prop_assert_eq!(got, expected);
        prop_assert_eq!(state.frames_in() as usize, count);
    }

    /// Frames interleaved across several connections: each connection's
    /// stream is chunked independently and fed in round-robin, and each must
    /// produce exactly its own whole-buffer decode, in order.
    #[test]
    fn interleaved_connections_do_not_cross_contaminate(
        seed in any::<u64>(),
        num_conns in 2usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let per_conn: Vec<_> = (0..num_conns)
            .map(|_| {
                let count = rng.gen_range(1..12usize);
                framed_stream(&mut rng, 4, count)
            })
            .collect();
        let mut states: Vec<_> = (0..num_conns).map(|_| ConnState::new(1 << 20)).collect();
        let mut got: Vec<Vec<(u32, Message)>> = vec![Vec::new(); num_conns];
        let mut offsets = vec![0usize; num_conns];
        // Round-robin until every stream is drained, random chunk per turn.
        loop {
            let mut progressed = false;
            for i in 0..num_conns {
                let stream = &per_conn[i].0;
                if offsets[i] >= stream.len() {
                    continue;
                }
                progressed = true;
                let take = rng.gen_range(1..=32usize).min(stream.len() - offsets[i]);
                let sink = &mut got[i];
                states[i]
                    .ingest(&stream[offsets[i]..offsets[i] + take], Some(4), |c, m| {
                        sink.push((c, m))
                    })
                    .expect("clean stream");
                offsets[i] += take;
            }
            if !progressed {
                break;
            }
        }
        for i in 0..num_conns {
            prop_assert_eq!(&got[i], &per_conn[i].1, "connection {} diverged", i);
        }
    }

    /// The corruption suite, one fragment at a time: random byte flips
    /// anywhere in a framed stream must never panic, never deliver to an
    /// out-of-range cluster, and never buffer beyond the frame cap. After
    /// the first error the connection is dead — exactly the server's
    /// close-on-protocol-error behaviour.
    #[test]
    fn flipped_bytes_through_fragments_never_panic_or_overbuffer(
        seed in any::<u64>(),
        flips in prop::collection::vec((any::<u32>(), any::<u32>()), 4),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut stream, _) = framed_stream(&mut rng, 4, 3);
        let len = stream.len();
        for &(pos, xor) in &flips {
            stream[pos as usize % len] ^= (xor & 0xff) as u8;
        }
        const CAP: usize = 1 << 16;
        let mut state = ConnState::new(CAP);
        let mut offset = 0;
        let mut dead = false;
        while offset < len && !dead {
            let take = rng.gen_range(1..=7usize).min(len - offset);
            let result = state.ingest(&stream[offset..offset + take], Some(4), |c, _| {
                // Deliveries that happen before corruption bites must still
                // be range-checked.
                assert!(c < 4, "delivered to out-of-range cluster");
            });
            dead = result.is_err();
            offset += take;
            prop_assert!(state.buffered() <= CAP + 4, "buffered past the frame cap");
        }
    }

    /// Hostile length prefixes arriving byte-by-byte: the reassembler must
    /// reject the length the moment the 4th header byte lands, without
    /// having allocated anything toward the claimed size.
    #[test]
    fn huge_length_prefix_in_fragments_errors_before_allocating(claimed in 1u64<<21..1u64<<32) {
        const CAP: usize = 1 << 20;
        let mut r = FrameReassembler::new(CAP);
        let prefix = (claimed as u32).to_be_bytes();
        let mut result = Ok(0);
        for b in prefix {
            result = r.push(&[b], |_| ControlFlow::Continue(()));
            if result.is_err() {
                break;
            }
        }
        prop_assert!(result.is_err(), "oversized prefix accepted");
        prop_assert!(r.buffered() <= 4);
    }
}

/// The PR 5 "huge inner count" frame — a report claiming `u64::MAX` changed
/// entries — fed through socket reassembly one byte at a time: the framing
/// layer passes it (its outer length is honest) and the wire decoder rejects
/// it before sizing any allocation, as a clean `ConnError::Wire`.
#[test]
fn huge_inner_count_through_reassembly_is_a_clean_wire_error() {
    use bytes::{BufMut, BytesMut};
    use capes_agents::wire::put_varint;
    let mut inner = BytesMut::new();
    inner.put_u8(0xF7); // fleet envelope tag
    put_varint(&mut inner, 3); // cluster id
    inner.put_u8(0x01); // inner TAG_REPORT
    put_varint(&mut inner, 9); // tick
    put_varint(&mut inner, 0); // node
    put_varint(&mut inner, 44); // total_pis
    put_varint(&mut inner, u64::MAX); // corrupt count
    let mut stream = Vec::new();
    encode_frame_into(&mut stream, &inner);

    let mut state = ConnState::new(1 << 20);
    let mut outcome = Ok(0);
    for b in &stream {
        outcome = state.ingest(std::slice::from_ref(b), Some(8), |_, _| {
            panic!("corrupt frame must not deliver")
        });
        if outcome.is_err() {
            break;
        }
    }
    assert!(
        matches!(outcome, Err(capes_net::ConnError::Wire(_))),
        "expected a wire error, got {outcome:?}"
    );
}
