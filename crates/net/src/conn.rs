//! Per-connection ingest state, decoupled from any socket.
//!
//! [`ConnState`] owns the byte→message half of a connection: a
//! [`FrameReassembler`] feeding each completed frame through the hardened
//! cluster-envelope decoder ([`capes_agents::wire::decode_cluster_frame`]).
//! Keeping it socket-free means the partial-read and corruption property
//! tests can drive it with raw byte chunks, exactly as the reactor does.

use std::ops::ControlFlow;

use capes_agents::wire::{decode_cluster_frame, WireError};
use capes_agents::Message;

use crate::framing::{FrameReassembler, FramingError};

/// Why a connection's ingest stream was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnError {
    /// The byte stream violated framing (only oversized prefixes can).
    Framing(FramingError),
    /// A complete frame failed the envelope or message decoder.
    Wire(WireError),
    /// A well-formed frame named a cluster outside the configured range.
    UnknownCluster {
        /// The cluster id the frame carried.
        cluster: u32,
        /// The exclusive upper bound on valid ids.
        num_clusters: usize,
    },
}

impl std::fmt::Display for ConnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnError::Framing(e) => write!(f, "framing violation: {e}"),
            ConnError::Wire(e) => write!(f, "frame decode failed: {e}"),
            ConnError::UnknownCluster {
                cluster,
                num_clusters,
            } => write!(
                f,
                "frame addressed to cluster {cluster}, server owns {num_clusters}"
            ),
        }
    }
}

impl std::error::Error for ConnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConnError::Framing(e) => Some(e),
            ConnError::Wire(e) => Some(e),
            ConnError::UnknownCluster { .. } => None,
        }
    }
}

impl From<FramingError> for ConnError {
    fn from(e: FramingError) -> Self {
        ConnError::Framing(e)
    }
}

impl From<WireError> for ConnError {
    fn from(e: WireError) -> Self {
        ConnError::Wire(e)
    }
}

/// Byte-stream → decoded-message state for one connection.
pub struct ConnState {
    reassembler: FrameReassembler,
    frames_in: u64,
    last_cluster: Option<u32>,
}

impl ConnState {
    /// Fresh state with the given per-frame cap.
    pub fn new(max_frame_len: usize) -> Self {
        ConnState {
            reassembler: FrameReassembler::new(max_frame_len),
            frames_in: 0,
            last_cluster: None,
        }
    }

    /// Complete frames decoded on this connection so far.
    pub fn frames_in(&self) -> u64 {
        self.frames_in
    }

    /// The cluster id of the most recent decoded frame, if any. The server
    /// uses this to learn which connection serves which cluster for the
    /// action downlink.
    pub fn last_cluster(&self) -> Option<u32> {
        self.last_cluster
    }

    /// Bytes held for a frame still being reassembled.
    pub fn buffered(&self) -> usize {
        self.reassembler.buffered()
    }

    /// Feeds one raw chunk. Every frame that completes is decoded as a
    /// cluster-enveloped message and handed to `sink(cluster, message)`.
    /// When `num_clusters` is set, frames naming a cluster at or beyond it
    /// are rejected. Returns the number of messages delivered from this
    /// chunk.
    ///
    /// # Errors
    /// The first framing/decode/routing failure aborts the chunk; the
    /// connection is unrecoverable after an error (a byte stream cannot be
    /// resynchronised) and should be closed.
    pub fn ingest<F>(
        &mut self,
        chunk: &[u8],
        num_clusters: Option<usize>,
        mut sink: F,
    ) -> Result<usize, ConnError>
    where
        F: FnMut(u32, Message),
    {
        let ConnState {
            reassembler,
            frames_in,
            last_cluster,
        } = self;
        let mut delivered = 0usize;
        let mut failure: Option<ConnError> = None;
        reassembler.push(chunk, |frame| match decode_cluster_frame(frame) {
            Ok((cluster, message)) => {
                if let Some(n) = num_clusters {
                    if cluster as usize >= n {
                        failure = Some(ConnError::UnknownCluster {
                            cluster,
                            num_clusters: n,
                        });
                        return ControlFlow::Break(());
                    }
                }
                *frames_in += 1;
                *last_cluster = Some(cluster);
                delivered += 1;
                sink(cluster, message);
                ControlFlow::Continue(())
            }
            Err(e) => {
                failure = Some(ConnError::Wire(e));
                ControlFlow::Break(())
            }
        })?;
        match failure {
            Some(e) => Err(e),
            None => Ok(delivered),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capes_agents::message::ActionMessage;
    use capes_agents::wire::encode_cluster_frame;

    fn framed(cluster: u32, tick: u64) -> Vec<u8> {
        let inner = encode_cluster_frame(
            cluster,
            &Message::Action(ActionMessage {
                tick,
                action_index: 1,
                parameter_values: vec![4.0],
            }),
        );
        let mut out = Vec::new();
        crate::framing::encode_frame_into(&mut out, &inner);
        out
    }

    #[test]
    fn decodes_across_chunk_boundaries() {
        let mut buf = framed(0, 1);
        buf.extend_from_slice(&framed(1, 2));
        let mut state = ConnState::new(1024);
        let mut seen = Vec::new();
        // Split in the middle of the second frame's envelope.
        let cut = framed(0, 1).len() + 3;
        state
            .ingest(&buf[..cut], Some(2), |c, m| seen.push((c, m)))
            .unwrap();
        state
            .ingest(&buf[cut..], Some(2), |c, m| seen.push((c, m)))
            .unwrap();
        assert_eq!(seen.len(), 2);
        assert_eq!((seen[0].0, seen[1].0), (0, 1));
        assert_eq!(state.frames_in(), 2);
        assert_eq!(state.last_cluster(), Some(1));
    }

    #[test]
    fn out_of_range_cluster_is_rejected_with_context() {
        let buf = framed(9, 1);
        let mut state = ConnState::new(1024);
        let err = state.ingest(&buf, Some(4), |_, _| {}).unwrap_err();
        assert_eq!(
            err,
            ConnError::UnknownCluster {
                cluster: 9,
                num_clusters: 4
            }
        );
    }

    #[test]
    fn garbage_payload_reports_wire_error_not_panic() {
        let mut buf = Vec::new();
        crate::framing::encode_frame_into(&mut buf, &[0xAB, 0xCD, 0xEF]);
        let mut state = ConnState::new(1024);
        assert!(matches!(
            state.ingest(&buf, None, |_, _| {}),
            Err(ConnError::Wire(_))
        ));
    }
}
