//! Length-prefixed stream framing with incremental reassembly.
//!
//! A TCP stream delivers bytes, not messages: one `read` may return half a
//! frame, three frames, or a frame and a half. The [`FrameReassembler`] turns
//! that byte soup back into whole frames without ever trusting the peer —
//! the length prefix is validated against a hard cap *before* any allocation,
//! so a hostile 4-byte header cannot make the server reserve gigabytes.
//!
//! ```text
//! stream := frame*
//! frame  := u32_be(len) payload[len]
//! ```
//!
//! The payload buffer is reused across frames, so a long-lived connection
//! settles at one allocation of at most `max_frame_len` bytes.

use std::ops::ControlFlow;

/// Bytes of length prefix in front of every frame.
pub const LENGTH_PREFIX_BYTES: usize = 4;

/// Default cap on a single frame's payload (1 MiB). A full 1024-node PI
/// report is under 10 KiB, so this leaves two orders of magnitude of slack
/// while still bounding what a corrupt prefix can demand.
pub const DEFAULT_MAX_FRAME_LEN: usize = 1 << 20;

/// Errors from frame reassembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FramingError {
    /// A length prefix exceeded the configured cap. Raised before any
    /// allocation, so oversized claims cost nothing.
    Oversized {
        /// The length the prefix claimed.
        len: usize,
        /// The configured cap it exceeded.
        max: usize,
    },
}

impl std::fmt::Display for FramingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FramingError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds cap {max}")
            }
        }
    }
}

impl std::error::Error for FramingError {}

/// Appends `payload` to `out` as one length-prefixed frame.
pub fn encode_frame_into(out: &mut Vec<u8>, payload: &[u8]) {
    assert!(
        payload.len() <= u32::MAX as usize,
        "frame payload exceeds u32 length prefix"
    );
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
}

/// Incremental reassembly of length-prefixed frames from arbitrary chunks.
pub struct FrameReassembler {
    max_frame_len: usize,
    header: [u8; LENGTH_PREFIX_BYTES],
    header_filled: usize,
    payload: Vec<u8>,
    expecting: Option<usize>,
}

impl FrameReassembler {
    /// A reassembler that rejects any frame longer than `max_frame_len`.
    pub fn new(max_frame_len: usize) -> Self {
        FrameReassembler {
            max_frame_len,
            header: [0; LENGTH_PREFIX_BYTES],
            header_filled: 0,
            payload: Vec::new(),
            expecting: None,
        }
    }

    /// The configured per-frame cap.
    pub fn max_frame_len(&self) -> usize {
        self.max_frame_len
    }

    /// Bytes currently held for a frame still in flight. The payload buffer
    /// itself is retained across frames (it is reused), but its bytes only
    /// count while a frame is incomplete.
    pub fn buffered(&self) -> usize {
        let mid_payload = if self.expecting.is_some() {
            self.payload.len()
        } else {
            0
        };
        self.header_filled + mid_payload
    }

    /// Feeds one chunk of stream bytes, invoking `sink` once per completed
    /// frame. `sink` may return [`ControlFlow::Break`] to stop consuming
    /// (the rest of `chunk` is dropped — used when shedding a connection).
    /// Returns the number of frames completed from this chunk.
    ///
    /// # Errors
    /// [`FramingError::Oversized`] the moment a length prefix exceeds the
    /// cap; the reassembler is poisoned-in-place and the connection should
    /// be closed (resynchronising inside a byte stream is not possible).
    pub fn push<F>(&mut self, mut chunk: &[u8], mut sink: F) -> Result<usize, FramingError>
    where
        F: FnMut(&[u8]) -> ControlFlow<()>,
    {
        let mut frames = 0usize;
        while !chunk.is_empty() {
            match self.expecting {
                None => {
                    let need = LENGTH_PREFIX_BYTES - self.header_filled;
                    let take = need.min(chunk.len());
                    // In bounds: `take <= chunk.len()` and
                    // `header_filled + take <= LENGTH_PREFIX_BYTES` by
                    // construction of `need`.
                    self.header[self.header_filled..self.header_filled + take]
                        .copy_from_slice(&chunk[..take]); // In bounds: see above.
                    self.header_filled += take;
                    // In bounds: `take <= chunk.len()`.
                    chunk = &chunk[take..];
                    if self.header_filled == LENGTH_PREFIX_BYTES {
                        let len = u32::from_be_bytes(self.header) as usize;
                        if len > self.max_frame_len {
                            return Err(FramingError::Oversized {
                                len,
                                max: self.max_frame_len,
                            });
                        }
                        self.header_filled = 0;
                        self.payload.clear();
                        // Validated against the cap above, so this reserve is
                        // bounded by max_frame_len no matter what the peer sent.
                        self.payload.reserve(len);
                        if len == 0 {
                            // Zero-length frames complete without a payload
                            // byte ever arriving.
                            frames += 1;
                            if sink(&[]).is_break() {
                                return Ok(frames);
                            }
                        } else {
                            self.expecting = Some(len);
                        }
                    }
                }
                Some(len) => {
                    let need = len - self.payload.len();
                    let take = need.min(chunk.len());
                    // In bounds: `take <= chunk.len()` by construction.
                    self.payload.extend_from_slice(&chunk[..take]);
                    // In bounds: `take <= chunk.len()`.
                    chunk = &chunk[take..];
                    if self.payload.len() == len {
                        self.expecting = None;
                        frames += 1;
                        if sink(&self.payload).is_break() {
                            return Ok(frames);
                        }
                    }
                }
            }
        }
        Ok(frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(r: &mut FrameReassembler, chunk: &[u8]) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        r.push(chunk, |f| {
            out.push(f.to_vec());
            ControlFlow::Continue(())
        })
        .unwrap();
        out
    }

    #[test]
    fn whole_frames_pass_through() {
        let mut buf = Vec::new();
        encode_frame_into(&mut buf, b"alpha");
        encode_frame_into(&mut buf, b"");
        encode_frame_into(&mut buf, b"bravo");
        let mut r = FrameReassembler::new(64);
        assert_eq!(
            collect(&mut r, &buf),
            vec![b"alpha".to_vec(), vec![], b"bravo".to_vec()]
        );
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn single_byte_dribble_reassembles() {
        let mut buf = Vec::new();
        encode_frame_into(&mut buf, b"slow loris");
        let mut r = FrameReassembler::new(64);
        let mut out = Vec::new();
        for b in &buf {
            r.push(std::slice::from_ref(b), |f| {
                out.push(f.to_vec());
                ControlFlow::Continue(())
            })
            .unwrap();
        }
        assert_eq!(out, vec![b"slow loris".to_vec()]);
    }

    #[test]
    fn oversized_prefix_errors_before_allocating() {
        let mut r = FrameReassembler::new(1024);
        let bad = u32::MAX.to_be_bytes();
        let err = r.push(&bad, |_| ControlFlow::Continue(())).unwrap_err();
        assert_eq!(
            err,
            FramingError::Oversized {
                len: u32::MAX as usize,
                max: 1024
            }
        );
        // The payload buffer never grew toward the claimed 4 GiB.
        assert!(r.payload.capacity() <= 1024);
    }

    #[test]
    fn break_from_sink_stops_mid_chunk() {
        let mut buf = Vec::new();
        encode_frame_into(&mut buf, b"one");
        encode_frame_into(&mut buf, b"two");
        let mut r = FrameReassembler::new(64);
        let mut seen = 0;
        let frames = r
            .push(&buf, |_| {
                seen += 1;
                ControlFlow::Break(())
            })
            .unwrap();
        assert_eq!((frames, seen), (1, 1));
    }
}
