//! Blocking client-side frame I/O.
//!
//! The fleet's loopback clients (and the ingest bench) are simple blocking
//! writers: they already pace themselves on the tick schedule, so async
//! machinery on the client side would buy nothing. These helpers put the
//! length prefix on outbound frames and strip it from inbound ones, with the
//! same pre-allocation length check the server enforces.

use std::io::{self, Read, Write};

use crate::framing::LENGTH_PREFIX_BYTES;

/// Writes `payload` to `w` as one length-prefixed frame.
///
/// # Errors
/// Any I/O error from the underlying writer.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    assert!(
        payload.len() <= u32::MAX as usize,
        "frame payload exceeds u32 length prefix"
    );
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)
}

/// Reads one length-prefixed frame from `r` into `buf` (cleared first).
///
/// # Errors
/// `InvalidData` if the prefix exceeds `max_frame_len` (checked before any
/// allocation); otherwise any I/O error, including `UnexpectedEof` on a
/// stream that ends mid-frame.
pub fn read_frame<R: Read>(r: &mut R, max_frame_len: usize, buf: &mut Vec<u8>) -> io::Result<()> {
    let mut prefix = [0u8; LENGTH_PREFIX_BYTES];
    r.read_exact(&mut prefix)?;
    let len = u32::from_be_bytes(prefix) as usize;
    if len > max_frame_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {max_frame_len}"),
        ));
    }
    buf.clear();
    buf.resize(len, 0);
    r.read_exact(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_through_a_cursor() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"ping").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut cursor = &wire[..];
        let mut buf = Vec::new();
        read_frame(&mut cursor, 64, &mut buf).unwrap();
        assert_eq!(buf, b"ping");
        read_frame(&mut cursor, 64, &mut buf).unwrap();
        assert!(buf.is_empty());
    }

    #[test]
    fn oversized_inbound_prefix_is_invalid_data() {
        let wire = u32::MAX.to_be_bytes();
        let mut cursor = &wire[..];
        let mut buf = Vec::new();
        let err = read_frame(&mut cursor, 1024, &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(buf.capacity() < 1024 * 1024);
    }
}
