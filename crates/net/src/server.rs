//! The fleet socket server: one reactor thread multiplexing every
//! monitoring/control connection over epoll.
//!
//! Design rules (ISSUE 6):
//!
//! - **Never block the training thread.** Decoded messages flow through a
//!   *bounded* crossbeam channel; the training side drains it between steps.
//!   If the channel fills, the reactor thread itself blocks on `send` — that
//!   is the global backpressure valve, and it propagates to clients as TCP
//!   flow control because the reactor stops reading.
//! - **Never buffer a slow client without bound.** Outbound bytes per
//!   connection are capped; a client that cannot drain its action frames is
//!   shed with a counted disconnect instead of growing a queue.
//! - **Never trust a length prefix.** All reassembly goes through
//!   [`FrameReassembler`](crate::framing::FrameReassembler), which validates
//!   against `max_frame_len` before allocating, and every frame decodes via
//!   the hardened [`capes_agents::wire`] path.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use capes_agents::wire::encode_cluster_frame;
use capes_agents::Message;
use capes_telemetry::{Counter, Gauge};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use reactor::{Events, Interest, Poll, TimerQueue, Token, Waker};
use serde::{Deserialize, Serialize};

use crate::conn::ConnState;
use crate::framing::{encode_frame_into, DEFAULT_MAX_FRAME_LEN, LENGTH_PREFIX_BYTES};

/// Tuning knobs for a [`FleetServer`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Hard cap on a single frame's payload; oversized prefixes close the
    /// connection before any allocation.
    pub max_frame_len: usize,
    /// Cap on *outbound* bytes buffered per connection. A client further
    /// behind than this is shed (counted in `shed_backpressure`).
    pub max_conn_buffered: usize,
    /// Size of the read scratch buffer (one `read` syscall's worth).
    pub read_chunk: usize,
    /// Capacity of the bounded ingress channel handed to the consumer. Size
    /// it to at least one tick's worth of traffic (2 × total monitors) or
    /// the reactor will stall mid-tick waiting for the consumer.
    pub ingress_capacity: usize,
    /// When set, frames naming a cluster `>= num_clusters` are rejected and
    /// the sending connection closed.
    pub num_clusters: Option<usize>,
    /// When set, connections silent for this long are shed
    /// (counted in `shed_idle`).
    pub idle_timeout: Option<Duration>,
    /// When `true`, a connection whose first byte is `G` is treated as an
    /// HTTP/1.x client and answered with one Prometheus-style `/metrics`
    /// exposition of the process's telemetry registry, then closed. Framed
    /// traffic is unambiguous: `G` as the top byte of a length prefix would
    /// claim a frame of ≥ 1.1 GiB, far beyond any sane `max_frame_len`.
    pub expose_metrics: bool,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            max_conn_buffered: 256 * 1024,
            read_chunk: 16 * 1024,
            ingress_capacity: 4096,
            num_clusters: None,
            idle_timeout: None,
            expose_metrics: false,
        }
    }
}

/// Counters maintained by the reactor thread, readable from any thread.
/// Every field is a telemetry handle, so the fleet links the *same* atomics
/// into the global metrics registry under `net.*` (see [`NetStats::publish`])
/// instead of copying values across. `active` and `ingress_depth` are
/// gauges (they go down); everything else only grows.
#[derive(Debug, Default)]
pub struct NetStats {
    accepted: Counter,
    active: Gauge,
    shed_backpressure: Counter,
    shed_idle: Counter,
    disconnects: Counter,
    decode_errors: Counter,
    frames_in: Counter,
    frames_out: Counter,
    bytes_in: Counter,
    bytes_out: Counter,
    /// Decoded messages sitting in the ingress channel, refreshed by the
    /// reactor after every delivery and before every `/metrics` scrape.
    ingress_depth: Gauge,
}

macro_rules! bump {
    ($stats:expr, $field:ident) => {
        $stats.$field.inc()
    };
    ($stats:expr, $field:ident, $n:expr) => {
        $stats.$field.add($n as u64)
    };
}

impl NetStats {
    /// A consistent-enough point-in-time copy of every counter.
    pub fn snapshot(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            accepted: self.accepted.get(),
            active: self.active.get() as u64,
            shed_backpressure: self.shed_backpressure.get(),
            shed_idle: self.shed_idle.get(),
            disconnects: self.disconnects.get(),
            decode_errors: self.decode_errors.get(),
            frames_in: self.frames_in.get(),
            frames_out: self.frames_out.get(),
            bytes_in: self.bytes_in.get(),
            bytes_out: self.bytes_out.get(),
        }
    }

    /// Links every counter into `registry` under `net.*` names (latest
    /// server wins). The handles share storage with the reactor, so a
    /// mid-run scrape always reads live values.
    pub fn publish(&self, registry: &capes_telemetry::Registry) {
        registry.publish_counter("net.accepted", &self.accepted);
        registry.publish_gauge("net.active", &self.active);
        registry.publish_counter("net.shed_backpressure", &self.shed_backpressure);
        registry.publish_counter("net.shed_idle", &self.shed_idle);
        registry.publish_counter("net.disconnects", &self.disconnects);
        registry.publish_counter("net.decode_errors", &self.decode_errors);
        registry.publish_counter("net.frames_in", &self.frames_in);
        registry.publish_counter("net.frames_out", &self.frames_out);
        registry.publish_counter("net.bytes_in", &self.bytes_in);
        registry.publish_counter("net.bytes_out", &self.bytes_out);
        registry.publish_gauge("net.ingress.depth", &self.ingress_depth);
    }
}

/// Plain-value copy of [`NetStats`], serialisable into reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStatsSnapshot {
    /// Connections accepted over the server's lifetime.
    pub accepted: u64,
    /// Connections currently open.
    pub active: u64,
    /// Connections shed because their outbound buffer exceeded the cap.
    pub shed_backpressure: u64,
    /// Connections shed for exceeding the idle timeout.
    pub shed_idle: u64,
    /// Connections that closed or errored from the peer side.
    pub disconnects: u64,
    /// Connections closed for framing/decode/routing violations.
    pub decode_errors: u64,
    /// Well-formed frames decoded and delivered to the ingress channel.
    pub frames_in: u64,
    /// Frames queued for transmission to clients.
    pub frames_out: u64,
    /// Raw bytes read off sockets.
    pub bytes_in: u64,
    /// Raw bytes written to sockets.
    pub bytes_out: u64,
}

/// Commands from the owning thread to the reactor.
enum ServerCmd {
    /// Queue `frame` (already cluster-enveloped, not yet length-prefixed)
    /// for the connection currently serving `cluster`.
    Send { cluster: u32, frame: bytes::Bytes },
    /// Stop the reactor and close every connection.
    Shutdown,
}

/// Owner-side handle to a running [`FleetServer`]. Dropping it shuts the
/// server down and joins the reactor thread.
pub struct ServerHandle {
    addr: SocketAddr,
    cmds: Sender<ServerCmd>,
    waker: Arc<Waker>,
    stats: Arc<NetStats>,
    join: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener is bound to (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current counter values.
    pub fn stats(&self) -> NetStatsSnapshot {
        self.stats.snapshot()
    }

    /// Queues `message` for the connection serving `cluster`. Returns
    /// `false` if the reactor has already stopped. Delivery is best-effort:
    /// if no connection has identified itself with that cluster id yet, the
    /// frame is dropped by the reactor.
    pub fn send(&self, cluster: u32, message: &Message) -> bool {
        let frame = encode_cluster_frame(cluster, message);
        if self.cmds.send(ServerCmd::Send { cluster, frame }).is_err() {
            return false;
        }
        self.waker.wake().is_ok()
    }

    /// Stops the reactor, joins its thread, and returns the final counters.
    pub fn shutdown(mut self) -> NetStatsSnapshot {
        self.stop();
        self.stats.snapshot()
    }

    fn stop(&mut self) {
        if let Some(join) = self.join.take() {
            let _ = self.cmds.send(ServerCmd::Shutdown);
            let _ = self.waker.wake();
            let _ = join.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The socket front end. See the module docs for the design rules.
pub struct FleetServer;

impl FleetServer {
    /// Binds `addr`, spawns the reactor thread, and returns the owner handle
    /// plus the bounded ingress channel of decoded `(cluster, message)`
    /// pairs.
    ///
    /// # Errors
    /// Any I/O error from binding the listener or creating the epoll set.
    pub fn spawn<A: ToSocketAddrs>(
        addr: A,
        config: NetConfig,
    ) -> io::Result<(ServerHandle, Receiver<(u32, Message)>)> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let poll = Poll::new()?;
        let waker = Arc::new(Waker::new(&poll, WAKER)?);
        poll.register(listener.as_raw_fd(), LISTENER, Interest::READABLE)?;

        let (ingress_tx, ingress_rx) = bounded(config.ingress_capacity);
        let (cmd_tx, cmd_rx) = unbounded();
        let stats = Arc::new(NetStats::default());
        // Link this server's counters into the process registry (latest
        // server wins) so `/metrics` and `dump_metrics()` see live values.
        stats.publish(capes_telemetry::global());

        let mut reactor_loop = ServerLoop {
            poll,
            listener,
            conns: Vec::new(),
            free: Vec::new(),
            routes: HashMap::new(),
            ingress: ingress_tx,
            cmds: cmd_rx,
            waker: Arc::clone(&waker),
            stats: Arc::clone(&stats),
            config,
            timers: TimerQueue::default(),
        };
        let join = std::thread::Builder::new()
            .name("capes-net-reactor".into())
            .spawn(move || reactor_loop.run())?;

        Ok((
            ServerHandle {
                addr,
                cmds: cmd_tx,
                waker,
                stats,
                join: Some(join),
            },
            ingress_rx,
        ))
    }
}

const LISTENER: Token = Token(0);
const WAKER: Token = Token(1);
const IDLE_SWEEP: Token = Token(2);
const CONN_BASE: usize = 3;

/// Why the reactor closed a connection; selects the counter to bump.
#[derive(Clone, Copy, PartialEq, Eq)]
enum CloseReason {
    PeerClosed,
    ShedBackpressure,
    ShedIdle,
    Protocol,
}

/// What a connection turned out to speak, decided by its first byte.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ConnMode {
    /// Nothing read yet.
    Fresh,
    /// Length-prefixed CAPES frames (the normal case).
    Framed,
    /// An HTTP client scraping `/metrics` (only with
    /// [`NetConfig::expose_metrics`]).
    Http,
}

struct Conn {
    stream: TcpStream,
    state: ConnState,
    mode: ConnMode,
    /// Request bytes of an HTTP scrape, held until the blank line arrives.
    http_buf: Vec<u8>,
    /// Close the connection once `out` drains (HTTP response served).
    close_after_flush: bool,
    /// Outbound bytes not yet written; `out[out_cursor..]` is pending.
    out: Vec<u8>,
    out_cursor: usize,
    /// Whether the fd is currently registered with WRITABLE interest.
    want_write: bool,
    last_activity: Instant,
}

struct ServerLoop {
    poll: Poll,
    listener: TcpListener,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// cluster id → slab index of the connection that last spoke for it.
    routes: HashMap<u32, usize>,
    ingress: Sender<(u32, Message)>,
    cmds: Receiver<ServerCmd>,
    waker: Arc<Waker>,
    stats: Arc<NetStats>,
    config: NetConfig,
    timers: TimerQueue,
}

impl ServerLoop {
    fn run(&mut self) {
        if let Some(idle) = self.config.idle_timeout {
            self.timers
                .schedule_after(idle.min(IDLE_SWEEP_MAX), IDLE_SWEEP);
        }
        let mut events = Events::with_capacity(1024);
        loop {
            let timeout = self.timers.next_timeout(Instant::now());
            if self.poll.poll(&mut events, timeout).is_err() {
                // Only unrecoverable epoll failures land here (EINTR is
                // retried inside poll); nothing to do but stop serving.
                return;
            }
            for event in events.iter() {
                match event.token() {
                    LISTENER => self.accept_ready(),
                    WAKER => self.waker.drain(),
                    Token(t) => {
                        let idx = t - CONN_BASE;
                        if event.is_readable() && !self.conn_readable(idx) {
                            continue;
                        }
                        if event.is_writable() {
                            self.conn_flush(idx);
                        }
                        if event.is_error() {
                            self.close(idx, CloseReason::PeerClosed);
                        }
                    }
                }
            }
            // Commands are drained every iteration, not only on wake: a
            // wake that raced with a poll timeout must not strand a Send.
            loop {
                match self.cmds.try_recv() {
                    Ok(ServerCmd::Send { cluster, frame }) => self.queue_frame(cluster, &frame),
                    Ok(ServerCmd::Shutdown) => return,
                    Err(_) => break,
                }
            }
            let now = Instant::now();
            while let Some(token) = self.timers.pop_expired(now) {
                if token == IDLE_SWEEP {
                    self.sweep_idle(now);
                    if let Some(idle) = self.config.idle_timeout {
                        self.timers
                            .schedule_after(idle.min(IDLE_SWEEP_MAX), IDLE_SWEEP);
                    }
                }
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    // Action frames are latency-critical (they gate the next
                    // tick); never let Nagle hold them.
                    let _ = stream.set_nodelay(true);
                    let idx = self.free.pop().unwrap_or_else(|| {
                        self.conns.push(None);
                        self.conns.len() - 1
                    });
                    if self
                        .poll
                        .register(
                            stream.as_raw_fd(),
                            Token(CONN_BASE + idx),
                            Interest::READABLE,
                        )
                        .is_err()
                    {
                        self.free.push(idx);
                        continue;
                    }
                    // In bounds: `idx` came off the free list, which only
                    // holds slot indices already carved out of `conns`.
                    self.conns[idx] = Some(Conn {
                        stream,
                        state: ConnState::new(self.config.max_frame_len),
                        mode: ConnMode::Fresh,
                        http_buf: Vec::new(),
                        close_after_flush: false,
                        out: Vec::new(),
                        out_cursor: 0,
                        want_write: false,
                        last_activity: Instant::now(),
                    });
                    bump!(self.stats, accepted);
                    // Only the reactor thread updates `active`, so the
                    // read-modify-write on the gauge is race-free.
                    self.stats.active.set(self.stats.active.get() + 1.0);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept failures (EMFILE, aborted handshakes):
                // drop this readiness round, the listener stays registered.
                Err(_) => return,
            }
        }
    }

    /// Drains readable bytes from connection `idx`. Returns `false` if the
    /// connection was closed (its slab slot is gone).
    fn conn_readable(&mut self, idx: usize) -> bool {
        let mut chunk = vec![0u8; self.config.read_chunk];
        loop {
            let ServerLoop {
                conns,
                routes,
                ingress,
                stats,
                config,
                ..
            } = self;
            let Some(conn) = conns.get_mut(idx).and_then(Option::as_mut) else {
                return false;
            };
            let read_result = {
                // Times the read syscall alone; the decode work below has
                // its own span.
                let _span = capes_telemetry::span!("net.read");
                conn.stream.read(&mut chunk)
            };
            match read_result {
                Ok(0) => {
                    self.close(idx, CloseReason::PeerClosed);
                    return false;
                }
                Ok(n) => {
                    bump!(stats, bytes_in, n);
                    conn.last_activity = Instant::now();
                    if conn.mode == ConnMode::Fresh {
                        // In bounds: the Ok(0) arm above already returned,
                        // so at least one byte was read into `chunk`.
                        conn.mode = if config.expose_metrics && chunk[0] == b'G' {
                            ConnMode::Http
                        } else {
                            ConnMode::Framed
                        };
                    }
                    if conn.mode == ConnMode::Http {
                        if conn.close_after_flush {
                            // Response already queued; discard trailing bytes.
                            continue;
                        }
                        // In bounds: `read` wrote exactly `n <= chunk.len()`.
                        conn.http_buf.extend_from_slice(&chunk[..n]);
                        if conn.http_buf.len() > MAX_HTTP_REQUEST {
                            self.close(idx, CloseReason::Protocol);
                            return false;
                        }
                        // Headers complete (we ignore their content — every
                        // GET gets the same exposition) → answer and close.
                        if conn.http_buf.windows(4).any(|w| w == b"\r\n\r\n")
                            && !self.respond_metrics(idx)
                        {
                            return false;
                        }
                        continue;
                    }
                    let mut consumer_gone = false;
                    let ingested = {
                        let _span = capes_telemetry::span!("net.decode");
                        conn.state
                            // In bounds: `read` wrote exactly `n <= chunk.len()`.
                            .ingest(&chunk[..n], config.num_clusters, |cluster, message| {
                                bump!(stats, frames_in);
                                routes.insert(cluster, idx);
                                // A full channel blocks us here — that *is*
                                // the backpressure valve. Err means the
                                // consumer dropped the receiver: shut down.
                                if ingress.send((cluster, message)).is_err() {
                                    consumer_gone = true;
                                }
                            })
                    };
                    stats.ingress_depth.set(ingress.len() as f64);
                    if consumer_gone || ingested.is_err() {
                        let reason = if consumer_gone {
                            CloseReason::PeerClosed
                        } else {
                            CloseReason::Protocol
                        };
                        self.close(idx, reason);
                        return false;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(idx, CloseReason::PeerClosed);
                    return false;
                }
            }
        }
    }

    /// Serves one `/metrics` scrape on connection `idx`: refreshes the
    /// reactor-owned gauges, renders the global registry as Prometheus text
    /// and queues an HTTP/1.0 response that closes after flushing. Returns
    /// `false` if the connection is gone afterwards.
    fn respond_metrics(&mut self, idx: usize) -> bool {
        self.stats.ingress_depth.set(self.ingress.len() as f64);
        let body = capes_telemetry::dump_metrics();
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return false;
        };
        let header = format!(
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        conn.out.extend_from_slice(header.as_bytes());
        conn.out.extend_from_slice(body.as_bytes());
        conn.http_buf.clear();
        conn.close_after_flush = true;
        self.conn_flush(idx);
        self.conns.get(idx).is_some_and(|slot| slot.is_some())
    }

    fn queue_frame(&mut self, cluster: u32, frame: &[u8]) {
        let Some(&idx) = self.routes.get(&cluster) else {
            // No connection has spoken for this cluster yet; the caller's
            // contract says delivery is best-effort, so drop silently.
            return;
        };
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        let pending = conn.out.len() - conn.out_cursor;
        if pending + LENGTH_PREFIX_BYTES + frame.len() > self.config.max_conn_buffered {
            self.close(idx, CloseReason::ShedBackpressure);
            return;
        }
        // Reclaim consumed prefix before growing; keeps the buffer from
        // creeping even when the client is only slightly behind.
        if conn.out_cursor > 0 && conn.out_cursor == conn.out.len() {
            conn.out.clear();
            conn.out_cursor = 0;
        } else if conn.out_cursor >= 4096 {
            conn.out.drain(..conn.out_cursor);
            conn.out_cursor = 0;
        }
        encode_frame_into(&mut conn.out, frame);
        bump!(self.stats, frames_out);
        self.conn_flush(idx);
    }

    /// Writes as much pending output as the socket accepts; registers for
    /// WRITABLE readiness when the socket pushes back.
    fn conn_flush(&mut self, idx: usize) {
        // One egress span per flush call: covers every write syscall the
        // socket accepts in this round.
        let _span = capes_telemetry::span!("net.egress");
        loop {
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                return;
            };
            // In bounds: `out_cursor` only advances by written byte counts
            // and is reset whenever `out` is cleared, so it never passes
            // `out.len()`.
            let pending = &conn.out[conn.out_cursor..];
            if pending.is_empty() {
                conn.out.clear();
                conn.out_cursor = 0;
                if conn.close_after_flush {
                    // HTTP response fully written: close our side so the
                    // scraper sees EOF (HTTP/1.0 framing).
                    self.close(idx, CloseReason::PeerClosed);
                    return;
                }
                if conn.want_write {
                    conn.want_write = false;
                    let _ = self.poll.reregister(
                        conn.stream.as_raw_fd(),
                        Token(CONN_BASE + idx),
                        Interest::READABLE,
                    );
                }
                return;
            }
            match conn.stream.write(pending) {
                Ok(0) => {
                    self.close(idx, CloseReason::PeerClosed);
                    return;
                }
                Ok(n) => {
                    conn.out_cursor += n;
                    conn.last_activity = Instant::now();
                    bump!(self.stats, bytes_out, n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if !conn.want_write {
                        conn.want_write = true;
                        let _ = self.poll.reregister(
                            conn.stream.as_raw_fd(),
                            Token(CONN_BASE + idx),
                            Interest::READABLE.add(Interest::WRITABLE),
                        );
                    }
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(idx, CloseReason::PeerClosed);
                    return;
                }
            }
        }
    }

    fn sweep_idle(&mut self, now: Instant) {
        let Some(idle) = self.config.idle_timeout else {
            return;
        };
        let stale: Vec<usize> = self
            .conns
            .iter()
            .enumerate()
            .filter_map(|(idx, slot)| {
                let conn = slot.as_ref()?;
                (now.duration_since(conn.last_activity) >= idle).then_some(idx)
            })
            .collect();
        for idx in stale {
            self.close(idx, CloseReason::ShedIdle);
        }
    }

    fn close(&mut self, idx: usize, reason: CloseReason) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::take) else {
            return;
        };
        let _ = self.poll.deregister(conn.stream.as_raw_fd());
        drop(conn);
        self.routes.retain(|_, &mut v| v != idx);
        self.free.push(idx);
        self.stats.active.set(self.stats.active.get() - 1.0);
        match reason {
            CloseReason::PeerClosed => bump!(self.stats, disconnects),
            CloseReason::ShedBackpressure => bump!(self.stats, shed_backpressure),
            CloseReason::ShedIdle => bump!(self.stats, shed_idle),
            CloseReason::Protocol => bump!(self.stats, decode_errors),
        };
    }
}

/// Idle sweeps run at least this often so a freshly-stale connection is
/// noticed within one period even if traffic keeps the poll loop busy.
const IDLE_SWEEP_MAX: Duration = Duration::from_millis(500);

/// Cap on buffered HTTP request bytes before the scraper is shed — far more
/// than any real `GET /metrics` request, far less than a hostile stream.
const MAX_HTTP_REQUEST: usize = 8 * 1024;
