//! # capes-net
//!
//! The socket front end for the CAPES fleet daemon (ISSUE 6): an
//! epoll-reactor TCP server that accepts thousands of concurrent
//! monitoring/control connections, reassembles length-prefixed frames from
//! partial reads, decodes them through the hardened
//! [`capes_agents::wire`] path, and hands `(cluster, message)` pairs to the
//! training side over a *bounded* channel so network I/O can never block a
//! train step.
//!
//! The crate splits into layers that are each testable in isolation:
//!
//! | module | role |
//! |---|---|
//! | [`framing`] | length-prefixed reassembly; allocation-safe against hostile prefixes |
//! | [`conn`] | byte-stream → decoded-message state for one connection, socket-free |
//! | [`server`] | the reactor loop: accept, readiness, backpressure, shedding, stats |
//! | [`client`] | blocking helpers for loopback clients and benches |
//!
//! Backpressure has exactly two rules, both enforced with counters rather
//! than unbounded memory: a slow *consumer* (the trainer) blocks the reactor
//! on the bounded ingress channel, which TCP flow control propagates to every
//! client; a slow *client* that cannot drain its action frames past
//! `max_conn_buffered` outbound bytes is shed with a counted disconnect.

#![forbid(unsafe_code)]
#![cfg(target_os = "linux")]

pub mod client;
pub mod conn;
pub mod framing;
pub mod server;

pub use client::{read_frame, write_frame};
pub use conn::{ConnError, ConnState};
pub use framing::{
    encode_frame_into, FrameReassembler, FramingError, DEFAULT_MAX_FRAME_LEN, LENGTH_PREFIX_BYTES,
};
pub use server::{FleetServer, NetConfig, NetStats, NetStatsSnapshot, ServerHandle};
