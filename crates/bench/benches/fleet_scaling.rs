//! Criterion benchmark for multi-core fleet scaling: full fleet ticks on a
//! 16-cluster heterogeneous fleet at 1/2/4/8 fleet workers, plus the GEMM
//! worker pool against scoped-thread dispatch at the same thread counts (the
//! fleet pool is a clone of the GEMM pool, so the pair isolates pool overhead
//! from fleet-phase structure). Medians are recorded in
//! `BENCH_fleet_scaling.json` at the repo root, as cluster-ticks/sec for the
//! fleet entries (one iteration = one `tick_all` = 16 cluster ticks).
//!
//! The parallel tick is **bit-identical** to the sequential tick at any
//! worker count (`crates/fleet/tests/parallel_determinism.rs`), so this bench
//! measures pure dispatch: on a single-core host the curve is flat minus pool
//! overhead; scaling only shows on multi-core hosts.

#![deny(unsafe_op_in_unsafe_fn)]

use capes::{Hyperparameters, Phase, PhaseKind};
use capes_fleet::{Fleet, FleetDaemon, FleetPlan, ScenarioSpec};
use capes_tensor::simd::{self};
use capes_tensor::WorkerPool;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const FLEET_SIZE: usize = 16;

fn fleet(workers: usize) -> FleetDaemon {
    let hp = Hyperparameters {
        sampling_ticks_per_observation: 3,
        ..Hyperparameters::quick_test()
    };
    let mut daemon = Fleet::builder()
        .hyperparams(hp)
        .seed(9)
        .workers(workers)
        .scenarios(ScenarioSpec::heterogeneous_mix(FLEET_SIZE))
        .build()
        .expect("valid fleet");
    // Warm past cold start so every measured tick carries observations and
    // the train path actually trains.
    daemon.run(&FleetPlan::new().phase(Phase::Train { ticks: 12 }));
    daemon
}

/// Train and tuned fleet ticks at each worker count. Train ticks overlap the
/// per-profile training step with the other profiles' apply phase; tuned
/// ticks are pure gather → decide → scatter → finish.
fn bench_fleet_ticks(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_scaling");
    group.sample_size(10);
    for &workers in &[1usize, 2, 4, 8] {
        let mut daemon = fleet(workers);
        group.bench_function(
            format!("train_tick_16_clusters/{workers}_workers"),
            |bench| {
                bench.iter(|| {
                    daemon.tick_all(PhaseKind::Train);
                    black_box(daemon.cluster_ticks())
                })
            },
        );
        group.bench_function(
            format!("tuned_tick_16_clusters/{workers}_workers"),
            |bench| {
                bench.iter(|| {
                    daemon.tick_all(PhaseKind::Tuned);
                    black_box(daemon.cluster_ticks())
                })
            },
        );
    }
    group.finish();
}

/// The persistent worker pool against per-call scoped threads on the 600³
/// GEMM, at the same thread counts as the fleet entries: what the pool's
/// pre-spawned workers and allocation-free dispatch save over spawning.
fn bench_gemm_pool_scaling(c: &mut Criterion) {
    let (m, k, n) = (600usize, 600usize, 600usize);
    let mut rng = StdRng::seed_from_u64(11);
    let a: Vec<f64> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let b: Vec<f64> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut out = vec![0.0; m * n];
    let level = simd::detected_level();

    let mut group = c.benchmark_group("fleet_scaling");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4, 8] {
        let pool = WorkerPool::new(threads);
        group.bench_function(format!("gemm_pooled_600/{threads}_threads"), |bench| {
            bench.iter(|| {
                out.fill(0.0);
                let ptr = SendPtr(out.as_mut_ptr());
                pool.run(m, 8, |start, end| {
                    // SAFETY: this chunk owns output rows start..end — ranges from
                    // one dispatch are disjoint and in bounds.
                    let chunk = unsafe { ptr.slice_mut(start * n, (end - start) * n) };
                    simd::gemm_rows_with(
                        level,
                        &a[start * k..end * k],
                        &b,
                        chunk,
                        end - start,
                        k,
                        n,
                    );
                });
                black_box(out[0])
            })
        });
        group.bench_function(format!("gemm_scoped_600/{threads}_threads"), |bench| {
            bench.iter(|| {
                out.fill(0.0);
                let ptr = SendPtr(out.as_mut_ptr());
                let chunk_rows = m.div_ceil(threads);
                std::thread::scope(|scope| {
                    for t in 0..threads {
                        let start = (t * chunk_rows).min(m);
                        let end = ((t + 1) * chunk_rows).min(m);
                        if start == end {
                            continue;
                        }
                        let a = &a;
                        let b = &b;
                        scope.spawn(move || {
                            // SAFETY: this chunk owns output rows start..end — ranges from
                            // one dispatch are disjoint and in bounds.
                            let chunk = unsafe { ptr.slice_mut(start * n, (end - start) * n) };
                            simd::gemm_rows_with(
                                level,
                                &a[start * k..end * k],
                                b,
                                chunk,
                                end - start,
                                k,
                                n,
                            );
                        });
                    }
                });
                black_box(out[0])
            })
        });
    }
    group.finish();
}

/// Raw pointer wrapper for disjoint row-range writes across threads (the
/// same shape the production pooled dispatch uses).
#[derive(Clone, Copy)]
struct SendPtr(*mut f64);
// SAFETY: only dereferenced through disjoint in-bounds row ranges while the
// owning buffer is alive.
unsafe impl Send for SendPtr {}
// SAFETY: as above — concurrent access is confined to disjoint ranges.
unsafe impl Sync for SendPtr {}
impl SendPtr {
    /// # Safety
    /// The range must be in bounds and disjoint from concurrent accesses.
    unsafe fn slice_mut<'a>(self, offset: usize, len: usize) -> &'a mut [f64] {
        // SAFETY: forwarded caller contract (see `# Safety` above).
        unsafe { std::slice::from_raw_parts_mut(self.0.add(offset), len) }
    }
}

criterion_group!(benches, bench_fleet_ticks, bench_gemm_pool_scaling);
criterion_main!(benches);
