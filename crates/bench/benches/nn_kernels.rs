//! Criterion micro-benchmarks for the neural-network kernels behind the
//! Table-2 training-step measurements: GEMM strategies, forward passes and
//! full forward+backward passes at the paper's network sizes.

use capes_nn::{Loss, Mlp, MseLoss};
use capes_tensor::{MatmulStrategy, Matrix};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = StdRng::seed_from_u64(1);
    for &n in &[64usize, 240, 600] {
        let a = Matrix::random_init(32, n, capes_tensor::WeightInit::XavierUniform, &mut rng);
        let b = Matrix::random_init(n, n, capes_tensor::WeightInit::XavierUniform, &mut rng);
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul_with(&b, MatmulStrategy::Blocked)))
        });
        group.bench_with_input(BenchmarkId::new("threaded", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul_with(&b, MatmulStrategy::Threaded)))
        });
    }
    group.finish();
}

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("q_network_forward");
    let mut rng = StdRng::seed_from_u64(2);
    // Compact (quick-run) network and the paper-sized 2200-input network.
    for &(label, input) in &[("compact_240", 240usize), ("paper_2200", 2200usize)] {
        let net = Mlp::capes_q_network(input, 5, &mut rng);
        let x = Matrix::random_init(1, input, capes_tensor::WeightInit::XavierUniform, &mut rng);
        group.bench_function(label, |bench| {
            bench.iter(|| black_box(net.forward_inference(&x)))
        });
    }
    group.finish();
}

fn bench_forward_backward(c: &mut Criterion) {
    let mut group = c.benchmark_group("q_network_train_pass");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(3);
    for &(label, input) in &[("compact_240", 240usize), ("paper_2200", 2200usize)] {
        let mut net = Mlp::capes_q_network(input, 5, &mut rng);
        let x = Matrix::random_init(32, input, capes_tensor::WeightInit::XavierUniform, &mut rng);
        let t = Matrix::zeros(32, 5);
        group.bench_function(label, |bench| {
            bench.iter(|| {
                let pred = net.forward(&x);
                let (_, d) = MseLoss.loss_and_grad(&pred, &t);
                black_box(net.backward(&d))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_forward, bench_forward_backward);
criterion_main!(benches);
