//! Criterion micro-benchmarks for the neural-network kernels behind the
//! Table-2 training-step measurements: GEMM strategies, forward passes and
//! full forward+backward passes at the paper's network sizes.

use capes_nn::{Adam, Loss, Mlp, MseLoss, Optimizer};
use capes_tensor::simd::{adam_update_with, detected_level, AdamStep, SimdLevel};
use capes_tensor::{MatmulStrategy, Matrix};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = StdRng::seed_from_u64(1);
    for &n in &[64usize, 240, 600] {
        let a = Matrix::random_init(32, n, capes_tensor::WeightInit::XavierUniform, &mut rng);
        let b = Matrix::random_init(n, n, capes_tensor::WeightInit::XavierUniform, &mut rng);
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul_with(&b, MatmulStrategy::Blocked)))
        });
        group.bench_with_input(BenchmarkId::new("threaded", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul_with(&b, MatmulStrategy::Threaded)))
        });
    }
    group.finish();
}

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("q_network_forward");
    let mut rng = StdRng::seed_from_u64(2);
    // Compact (quick-run) network and the paper-sized 2200-input network.
    for &(label, input) in &[("compact_240", 240usize), ("paper_2200", 2200usize)] {
        let net = Mlp::capes_q_network(input, 5, &mut rng);
        let x = Matrix::random_init(1, input, capes_tensor::WeightInit::XavierUniform, &mut rng);
        group.bench_function(label, |bench| {
            bench.iter(|| black_box(net.forward_inference(&x)))
        });
    }
    group.finish();
}

fn bench_forward_backward(c: &mut Criterion) {
    let mut group = c.benchmark_group("q_network_train_pass");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(3);
    for &(label, input) in &[("compact_240", 240usize), ("paper_2200", 2200usize)] {
        let mut net = Mlp::capes_q_network(input, 5, &mut rng);
        let x = Matrix::random_init(32, input, capes_tensor::WeightInit::XavierUniform, &mut rng);
        let t = Matrix::zeros(32, 5);
        group.bench_function(label, |bench| {
            bench.iter(|| {
                let pred = net.forward(&x);
                let (_, d) = MseLoss.loss_and_grad(&pred, &t);
                black_box(net.backward(&d))
            })
        });
    }
    group.finish();
}

fn bench_adam(c: &mut Criterion) {
    let mut group = c.benchmark_group("adam_update");
    let mut rng = StdRng::seed_from_u64(4);
    // Both SIMD arms of the raw slice kernel at the paper network's largest
    // parameter tensor (2200 × 400 first-layer weights), then the full
    // optimizer step end-to-end.
    let len = 2200 * 400;
    let grads: Vec<f64> = (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let step = AdamStep {
        learning_rate: 1e-4,
        beta1: 0.9,
        beta2: 0.999,
        epsilon: 1e-8,
        bias1: 1.0 - 0.9f64.powi(10),
        bias2: 1.0 - 0.999f64.powi(10),
        scale: 1.0,
    };
    let mut levels = vec![("scalar", SimdLevel::Scalar)];
    if detected_level() == SimdLevel::Avx2Fma {
        levels.push(("avx2", SimdLevel::Avx2Fma));
    }
    for (label, level) in levels {
        let mut params = vec![0.0f64; len];
        let mut m = vec![0.0f64; len];
        let mut v = vec![0.0f64; len];
        group.bench_with_input(BenchmarkId::new(label, "880k"), &level, |bench, &level| {
            bench.iter(|| {
                adam_update_with(level, &mut params, &grads, &mut m, &mut v, &step);
                black_box(params.last());
            })
        });
    }
    let mut net = Mlp::capes_q_network(2200, 5, &mut rng);
    let mut adam = Adam::new(1e-4, net.parameter_shapes());
    let x = Matrix::random_init(32, 2200, capes_tensor::WeightInit::XavierUniform, &mut rng);
    let t = Matrix::zeros(32, 5);
    let pred = net.forward(&x);
    let (_, d) = MseLoss.loss_and_grad(&pred, &t);
    let net_grads = net.backward(&d);
    group.bench_function("optimizer_step_paper_2200", |bench| {
        bench.iter(|| {
            adam.step(&mut net, &net_grads);
            black_box(adam.steps());
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_forward,
    bench_forward_backward,
    bench_adam
);
criterion_main!(benches);
