//! Criterion benchmarks of the end-to-end experiment building blocks and the
//! ablations called out in DESIGN.md: one full CAPES system tick per workload,
//! the cost of the Action Checker in the action path, and the effect of the
//! target-network update rate on a burst of training steps.
//!
//! These complement the `fig*` binaries: the binaries regenerate the paper's
//! figures (minutes of simulated time), while these benches track the cost of
//! the pieces those figures are built from.

use capes::objective::Objective;
use capes::prelude::*;
use capes::system::CapesSystem;
use capes_agents::{checker::ParamBound, ActionChecker};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn quick_system(workload: Workload, seed: u64) -> CapesSystem<SimulatedLustre> {
    let target = SimulatedLustre::builder()
        .workload(workload)
        .seed(seed)
        .build();
    Capes::builder(target)
        .hyperparams(Hyperparameters::quick_test())
        .seed(seed)
        .build()
        .expect("valid bench configuration")
}

fn bench_system_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("capes_system_tick");
    group.sample_size(20);
    for (label, workload) in [
        ("random_1_9", Workload::random_rw(0.1)),
        ("fileserver", Workload::fileserver()),
    ] {
        let mut system = quick_system(workload, 11);
        // Warm up so the replay DB can form observations and training runs.
        for _ in 0..50 {
            system.training_tick();
        }
        group.bench_function(BenchmarkId::new("training", label), |b| {
            b.iter(|| black_box(system.training_tick()))
        });
        group.bench_function(BenchmarkId::new("baseline", label), |b| {
            b.iter(|| black_box(system.baseline_tick()))
        });
    }
    group.finish();
}

fn bench_action_checker_ablation(c: &mut Criterion) {
    // Ablation: does screening every action through the checker add measurable
    // overhead to the action path? (The paper leaves the checker optional.)
    let mut group = c.benchmark_group("ablation_action_checker");
    group.sample_size(20);

    let make = |checker: ActionChecker, seed: u64| {
        let target = SimulatedLustre::builder()
            .workload(Workload::random_rw(0.1))
            .seed(seed)
            .build();
        let mut system = Capes::builder(target)
            .hyperparams(Hyperparameters::quick_test())
            .objective(Objective::Throughput)
            .checker(checker)
            .seed(seed)
            .build()
            .expect("valid bench configuration");
        for _ in 0..30 {
            system.training_tick();
        }
        system
    };

    let mut without = make(ActionChecker::permissive(), 21);
    group.bench_function("checker_disabled", |b| {
        b.iter(|| black_box(without.training_tick()))
    });

    let bounds = vec![
        ParamBound {
            name: "max_rpcs_in_flight",
            min: 8.0,
            max: 256.0,
        },
        ParamBound {
            name: "io_rate_limit",
            min: 50.0,
            max: 2000.0,
        },
    ];
    let mut with = make(ActionChecker::new(bounds, true), 21);
    group.bench_function("checker_enabled", |b| {
        b.iter(|| black_box(with.training_tick()))
    });
    group.finish();
}

fn bench_target_update_rate_ablation(c: &mut Criterion) {
    // Ablation: cost of a training burst at different target-network update
    // rates (α). The arithmetic cost is identical; this guards against the
    // soft-update accidentally becoming a hot spot at any α.
    use capes_drl::{DqnAgent, DqnAgentConfig, EpsilonSchedule, TrainerConfig};
    use capes_replay::{ReplayConfig, SharedReplayDb};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut group = c.benchmark_group("ablation_target_update_rate");
    group.sample_size(10);
    let obs = 240usize;
    let mut rng = StdRng::seed_from_u64(9);
    let db = SharedReplayDb::new(ReplayConfig {
        num_nodes: 1,
        pis_per_node: obs,
        ticks_per_observation: 1,
        missing_entry_tolerance: 0.2,
        capacity_ticks: 1_000,
    });
    for t in 0..400u64 {
        let pis: Vec<f64> = (0..obs).map(|_| rng.gen_range(-1.0..1.0)).collect();
        db.insert_snapshot(t, 0, pis);
        db.insert_objective(t, rng.gen_range(0.5..1.5));
        db.insert_action(t, rng.gen_range(0..5));
    }
    for alpha in [0.001, 0.01, 1.0] {
        let mut agent = DqnAgent::new(
            DqnAgentConfig {
                observation_size: obs,
                num_params: 2,
                minibatch_size: 32,
                trainer: TrainerConfig {
                    target_update_rate: alpha,
                    ..TrainerConfig::default()
                },
                epsilon: EpsilonSchedule::paper_default(),
            },
            3,
        );
        group.bench_with_input(BenchmarkId::from_parameter(alpha), &alpha, |b, _| {
            b.iter(|| black_box(agent.train_from_db(&db).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_system_tick,
    bench_action_checker_ablation,
    bench_target_update_rate_ablation
);
criterion_main!(benches);
