//! Criterion benchmark for the socket ingest path: a [`capes_net`] reactor
//! server fed by 1024 concurrent loopback connections (the acceptance floor
//! is 1000), each carrying length-prefixed monitoring frames. Every iteration
//! pushes one burst across all connections and drains it from the bounded
//! ingress channel; after the timed runs the server counters are asserted —
//! **zero** well-formed frames may be dropped, shed or miscounted. Medians
//! are recorded in `BENCH_net_ingest.json` at the repo root.
//!
//! `CAPES_NET_CONNS` overrides the connection count (CI's quick-mode soak
//! runs 512 to stay inside the runner's budget); the default exercises the
//! full 1024.

#[cfg(target_os = "linux")]
mod ingest {
    use std::io::Write;
    use std::net::TcpStream;

    use capes_agents::message::PiReport;
    use capes_agents::Message;
    use capes_fleet::encode_cluster_frame;
    use capes_net::{encode_frame_into, FleetServer, NetConfig};
    use criterion::Criterion;
    use std::hint::black_box;

    /// Frames each connection contributes per timed burst.
    const FRAMES_PER_CONN: usize = 8;
    /// Writer threads the connections are sharded across (each shard's
    /// frames interleave with every other shard's at the reactor).
    const WRITERS: usize = 8;

    fn connection_count() -> usize {
        std::env::var("CAPES_NET_CONNS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1024)
    }

    /// A representative monitoring report frame for `cluster`, fully encoded
    /// (envelope + length prefix) so the timed loop is pure I/O.
    fn encoded_report(cluster: u32, tick: u64) -> Vec<u8> {
        let message = Message::Report(PiReport {
            tick,
            node: cluster as usize,
            total_pis: 12,
            changed: (0..12u16).map(|pi| (pi, 0.25 + pi as f64)).collect(),
        });
        let mut framed = Vec::new();
        encode_frame_into(&mut framed, &encode_cluster_frame(cluster, &message));
        framed
    }

    pub fn bench_ingest(c: &mut Criterion) {
        let conns = connection_count();
        let config = NetConfig {
            num_clusters: Some(conns),
            ingress_capacity: (2 * conns * FRAMES_PER_CONN).max(1024),
            ..NetConfig::default()
        };
        let (handle, ingress) = FleetServer::spawn("127.0.0.1:0", config).expect("spawn server");

        // One connection per simulated cluster, each with its burst
        // pre-encoded.
        let mut pairs: Vec<(TcpStream, Vec<u8>)> = (0..conns)
            .map(|cluster| {
                let stream = TcpStream::connect(handle.local_addr()).expect("connect");
                stream.set_nodelay(true).expect("nodelay");
                let mut burst = Vec::new();
                for tick in 0..FRAMES_PER_CONN {
                    burst.extend_from_slice(&encoded_report(cluster as u32, tick as u64));
                }
                (stream, burst)
            })
            .collect();
        let burst_bytes: usize = pairs.iter().map(|(_, b)| b.len()).sum();
        let total_frames = conns * FRAMES_PER_CONN;

        let mut group = c.benchmark_group("net_ingest");
        group.sample_size(10);
        let mut bursts = 0u64;
        group.bench_function(
            format!("burst_{conns}conns_x{FRAMES_PER_CONN}frames"),
            |bench| {
                bench.iter(|| {
                    bursts += 1;
                    std::thread::scope(|scope| {
                        let shard = conns.div_ceil(WRITERS);
                        for chunk in pairs.chunks_mut(shard) {
                            scope.spawn(move || {
                                for (stream, burst) in chunk {
                                    stream.write_all(burst).expect("burst write");
                                }
                            });
                        }
                        // Drain the whole burst while the writers push — the
                        // bounded channel backpressures the reactor otherwise.
                        for _ in 0..total_frames {
                            black_box(ingress.recv().expect("server alive"));
                        }
                    });
                })
            },
        );
        group.finish();

        // Zero-drop acceptance: every well-formed frame sent arrived,
        // nothing was shed, nothing failed to decode.
        let stats = handle.stats();
        assert_eq!(stats.accepted, conns as u64, "all connections accepted");
        assert_eq!(stats.active, conns as u64, "no connection lost");
        assert_eq!(
            stats.frames_in,
            bursts * total_frames as u64,
            "dropped well-formed frames"
        );
        assert_eq!(stats.decode_errors, 0);
        assert_eq!(stats.shed_backpressure, 0);
        assert_eq!(stats.shed_idle, 0);
        assert_eq!(stats.disconnects, 0);
        eprintln!(
            "net_ingest: {conns} connections, {total_frames} frames/burst, \
             {burst_bytes} bytes/burst, {bursts} bursts, 0 dropped"
        );
    }
}

#[cfg(target_os = "linux")]
criterion::criterion_group!(benches, ingest::bench_ingest);
#[cfg(target_os = "linux")]
criterion::criterion_main!(benches);

#[cfg(not(target_os = "linux"))]
fn main() {}
