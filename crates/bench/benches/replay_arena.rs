//! Criterion benchmarks for the striped replay arena: single-stripe
//! Algorithm-1 sampling through the arena vs the PR 3 sharded store
//! (ring snapshots + side `BTreeMap`s behind one `RwLock`), and shared-scope
//! (weighted stripe-set) vs own-scope sampling on an 8-stripe fleet arena.
//! Medians are recorded in `BENCH_replay_arena.json` at the repo root.
//!
//! The PR 3 comparison isolates what the flat slot records buy: its
//! `has_transition_data` path cost two B-tree probes plus two full
//! observation builds per candidate draw, where the arena's flat probe costs
//! `O(window)` slot reads and builds observations only for accepted draws.

use capes_replay::{ReplayArena, ReplayBatch, ReplayConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::hint::black_box;

/// The ROADMAP's 600-feature shape: 5 clients × 12 compact PIs × 10 ticks.
fn config_600() -> ReplayConfig {
    ReplayConfig {
        num_nodes: 5,
        pis_per_node: 12,
        ticks_per_observation: 10,
        missing_entry_tolerance: 0.2,
        capacity_ticks: 250_000,
    }
}

fn fill_stripe(arena: &ReplayArena, stripe: usize, ticks: u64) {
    let mut rng = StdRng::seed_from_u64(7 + stripe as u64);
    let cfg = arena.stripe_config(stripe);
    let view = arena.stripe(stripe);
    for t in 0..ticks {
        for n in 0..cfg.num_nodes {
            let pis: Vec<f64> = (0..cfg.pis_per_node)
                .map(|_| rng.gen_range(-1.0..1.0))
                .collect();
            view.insert_snapshot(t, n, pis);
        }
        view.insert_objective(t, rng.gen_range(100.0..500.0));
        view.insert_action(t, rng.gen_range(0..5));
    }
}

// ---------------------------------------------------------------------------
// The PR 3 store, reimplemented for comparison: flat snapshot ring plus side
// objectives/actions BTreeMaps behind one RwLock, sampled through the
// observation-building `has_transition_data` it shipped with.
// ---------------------------------------------------------------------------

struct Pr3Db {
    config: ReplayConfig,
    slots: Vec<(Option<u64>, Vec<f64>, Vec<bool>)>,
    occupied: BTreeMap<u64, u32>,
    objectives: BTreeMap<u64, f64>,
    actions: BTreeMap<u64, usize>,
}

impl Pr3Db {
    fn new(config: ReplayConfig) -> Self {
        Pr3Db {
            config,
            slots: Vec::new(),
            occupied: BTreeMap::new(),
            objectives: BTreeMap::new(),
            actions: BTreeMap::new(),
        }
    }

    fn insert_snapshot(&mut self, tick: u64, node: usize, pis: &[f64]) {
        let idx = (tick % self.config.capacity_ticks as u64) as usize;
        if self.slots.len() <= idx {
            self.slots
                .resize_with(idx + 1, || (None, Vec::new(), Vec::new()));
        }
        let width = self.config.num_nodes * self.config.pis_per_node;
        let slot = &mut self.slots[idx];
        if slot.0 != Some(tick) {
            slot.0 = Some(tick);
            slot.1.resize(width, 0.0);
            slot.2.clear();
            slot.2.resize(self.config.num_nodes, false);
            self.occupied.insert(tick, 0);
        }
        slot.2[node] = true;
        slot.1[node * self.config.pis_per_node..][..self.config.pis_per_node].copy_from_slice(pis);
    }

    fn node_pis(&self, tick: u64, node: usize) -> Option<&[f64]> {
        let idx = (tick % self.config.capacity_ticks as u64) as usize;
        let slot = self.slots.get(idx).filter(|s| s.0 == Some(tick))?;
        slot.2[node].then(|| &slot.1[node * self.config.pis_per_node..][..self.config.pis_per_node])
    }

    fn write_observation(&self, tick: u64, out: &mut [f64]) -> bool {
        let s = self.config.ticks_per_observation as u64;
        if tick + 1 < s {
            return false;
        }
        let start = tick + 1 - s;
        let total = self.config.ticks_per_observation * self.config.num_nodes;
        let max_missing = (total as f64 * self.config.missing_entry_tolerance).floor() as usize;
        let width = self.config.num_nodes * self.config.pis_per_node;
        let pis = self.config.pis_per_node;
        let mut missing = 0usize;
        for (row, t) in (start..=tick).enumerate() {
            for node in 0..self.config.num_nodes {
                let values = match self.node_pis(t, node) {
                    Some(v) => Some(v),
                    None => {
                        missing += 1;
                        if missing > max_missing {
                            return false;
                        }
                        self.occupied
                            .range(..t)
                            .rev()
                            .find_map(|(&tt, _)| self.node_pis(tt, node))
                    }
                };
                let base = row * width + node * pis;
                match values {
                    Some(v) => out[base..base + pis].copy_from_slice(v),
                    None => out[base..base + pis].fill(0.0),
                }
            }
        }
        true
    }

    /// PR 3's sampler: `has_transition_data` builds both observations per
    /// candidate (into scratch), accepted candidates build them again into
    /// the batch rows.
    fn sample(&self, n: usize, rng: &mut StdRng, scratch: &mut [f64], out: &mut [f64]) -> usize {
        let earliest = *self.occupied.keys().next().unwrap();
        let latest = *self.occupied.keys().next_back().unwrap();
        let lo = earliest + self.config.ticks_per_observation as u64;
        let hi = latest - 1;
        let mut filled = 0usize;
        let mut drawn = 0usize;
        let budget = n * 200;
        while filled < n && drawn < budget {
            for _ in 0..(n - filled) {
                let t = rng.gen_range(lo..=hi);
                drawn += 1;
                if !(self.actions.contains_key(&t)
                    && self.objectives.contains_key(&(t + 1))
                    && self.write_observation(t, scratch)
                    && self.write_observation(t + 1, scratch))
                {
                    continue;
                }
                self.write_observation(t, out);
                self.write_observation(t + 1, scratch);
                filled += 1;
            }
        }
        filled
    }
}

fn bench_single_stripe(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay_arena");
    let cfg = config_600();

    // Arena path: a one-stripe arena sampled through its stripe view.
    let arena = ReplayArena::single(cfg);
    fill_stripe(&arena, 0, 2_000);
    let view = arena.stripe(0);
    let mut batch = ReplayBatch::new(32, cfg.observation_size());
    let mut rng = StdRng::seed_from_u64(5);
    group.bench_function("arena_single_stripe_600", |b| {
        b.iter(|| {
            view.construct_minibatch_into(&mut batch, &mut rng).unwrap();
            black_box(batch.timestamps_drawn())
        })
    });

    // PR 3 sharded path: same trace through the side-map store + RwLock.
    let mut pr3 = Pr3Db::new(cfg);
    {
        let mut rng = StdRng::seed_from_u64(7);
        for t in 0..2_000u64 {
            for n in 0..cfg.num_nodes {
                let pis: Vec<f64> = (0..cfg.pis_per_node)
                    .map(|_| rng.gen_range(-1.0..1.0))
                    .collect();
                pr3.insert_snapshot(t, n, &pis);
            }
            pr3.objectives.insert(t, rng.gen_range(100.0..500.0));
            pr3.actions.insert(t, rng.gen_range(0..5));
        }
    }
    let shard = RwLock::new(pr3);
    let mut scratch = vec![0.0; cfg.observation_size()];
    let mut row = vec![0.0; cfg.observation_size()];
    let mut rng = StdRng::seed_from_u64(5);
    group.bench_function("pr3_sharded_600", |b| {
        b.iter(|| {
            let db = shard.read();
            black_box(db.sample(32, &mut rng, &mut scratch, &mut row))
        })
    });
    group.finish();
}

fn bench_scopes(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay_arena");
    let cfg = config_600();
    let arena = ReplayArena::uniform(cfg, 8);
    for stripe in 0..8 {
        fill_stripe(&arena, stripe, 1_000);
    }
    let mut batch = ReplayBatch::new(32, cfg.observation_size());

    let view = arena.stripe(0);
    let mut rng = StdRng::seed_from_u64(9);
    group.bench_function("own_scope_8x600", |b| {
        b.iter(|| {
            view.construct_minibatch_into(&mut batch, &mut rng).unwrap();
            black_box(batch.timestamps_drawn())
        })
    });

    let weights = [1.0f64; 8];
    let mut rng = StdRng::seed_from_u64(9);
    group.bench_function("shared_scope_8x600", |b| {
        b.iter(|| {
            arena
                .construct_minibatch_weighted_into(&weights, &mut batch, &mut rng)
                .unwrap();
            black_box(batch.timestamps_drawn())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_single_stripe, bench_scopes);
criterion_main!(benches);
