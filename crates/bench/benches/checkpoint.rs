//! Criterion benchmark for the durability layer (ISSUE 7): full fleet
//! checkpoint writes, snapshot restores, and record-log append throughput.
//! Medians are recorded in `BENCH_checkpoint.json` at the repo root.
//!
//! Checkpointing rides the hot loop when auto-checkpointing is enabled, so
//! its cost per snapshot (serialize every agent, RNG stream and replay
//! stripe, then fsync twice) is what bounds how tight an interval a fleet
//! can afford.

use capes::{Hyperparameters, Phase, PhaseKind};
use capes_fleet::{Fleet, FleetDaemon, FleetPlan, ScenarioSpec};
use capes_persist::RecordLogWriter;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::path::PathBuf;

const FLEET_SIZE: usize = 8;

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("capes-bench-checkpoint");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A warmed-up heterogeneous fleet with populated replay stripes, so the
/// snapshot carries realistic weight and replay payloads.
fn warmed_fleet() -> FleetDaemon {
    let hp = Hyperparameters {
        sampling_ticks_per_observation: 3,
        ..Hyperparameters::quick_test()
    };
    let mut daemon = Fleet::builder()
        .hyperparams(hp)
        .seed(9)
        .scenarios(ScenarioSpec::heterogeneous_mix(FLEET_SIZE))
        .build()
        .expect("valid fleet");
    daemon.run(&FleetPlan::new().phase(Phase::Train { ticks: 24 }));
    daemon
}

fn bench_checkpoint(c: &mut Criterion) {
    let mut daemon = warmed_fleet();
    let path = temp_path("bench.snap");
    let mut group = c.benchmark_group("checkpoint");
    group.sample_size(10);

    group.bench_function(format!("checkpoint_write_{FLEET_SIZE}_clusters"), |bench| {
        bench.iter(|| {
            daemon.checkpoint(&path).expect("checkpoint");
            black_box(daemon.persist_report().checkpoints_written)
        })
    });

    let mut target = warmed_fleet();
    group.bench_function(
        format!("checkpoint_restore_{FLEET_SIZE}_clusters"),
        |bench| {
            bench.iter(|| {
                target.restore(&path).expect("restore");
                black_box(target.tick())
            })
        },
    );

    // One tick between checkpoints approximates the tightest sensible
    // auto-checkpoint interval.
    group.bench_function(
        format!("tick_plus_auto_checkpoint_{FLEET_SIZE}_clusters"),
        |bench| {
            daemon.auto_checkpoint_every(1, &path);
            bench.iter(|| {
                daemon.tick_all(PhaseKind::Train);
                black_box(daemon.cluster_ticks())
            })
        },
    );
    daemon.disable_auto_checkpoint();
    group.finish();
    let _ = std::fs::remove_file(&path);
}

fn bench_record_log(c: &mut Criterion) {
    // A typical uplink frame: a 12-PI report message for one node.
    let frame = capes_agents::wire::encode_message(&capes_agents::Message::Report(
        capes_agents::PiReport {
            tick: 1000,
            node: 3,
            total_pis: 12,
            changed: (0..12).map(|i| (i as u16, 0.5 + i as f64)).collect(),
        },
    ));
    let path = temp_path("bench.log");
    let mut group = c.benchmark_group("checkpoint");
    let mut writer = RecordLogWriter::create(&path).expect("create log");
    group.bench_function("record_log_append_report_frame", |bench| {
        bench.iter(|| {
            writer.append(1000, 2, &frame).expect("append");
            black_box(writer.records())
        })
    });
    group.finish();
    drop(writer);
    let _ = std::fs::remove_file(&path);
}

criterion_group!(benches, bench_checkpoint, bench_record_log);
criterion_main!(benches);
