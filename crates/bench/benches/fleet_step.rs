//! Criterion benchmark for the fleet decision path: one batched forward pass
//! for N clusters vs N sequential single-cluster decisions, plus the full
//! fleet tick end-to-end. Medians are recorded in `BENCH_fleet_step.json` at
//! the repo root.
//!
//! The batched path's advantage is weight reuse: a 1-row Q-network forward is
//! memory-bound (it streams every weight matrix once per decision), while an
//! N-row GEMM streams them once per *tick* — so batched decide wins even on a
//! single core.

use capes::{Hyperparameters, Phase, PhaseKind};
use capes_drl::{ActionDecision, DqnAgent, DqnAgentConfig};
use capes_fleet::{Fleet, FleetPlan, ScenarioSpec};
use capes_replay::Observation;
use capes_tensor::Matrix;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const FLEET_SIZE: usize = 8;
/// The compact-PI observation width of the paper's 5-client testbed
/// (10 sampling ticks × 5 clients × 12 PIs — ROADMAP's 600-feature shape).
const OBS: usize = 600;

fn observations(rng: &mut StdRng) -> Matrix {
    Matrix::from_vec(
        FLEET_SIZE,
        OBS,
        (0..FLEET_SIZE * OBS)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect(),
    )
}

/// Greedy decisions so every row exercises the forward pass (exploration
/// skips the network and would make both sides trivially cheap).
fn bench_decide(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let stacked = observations(&mut rng);
    let has_obs = vec![true; FLEET_SIZE];
    let mut group = c.benchmark_group("fleet_step");

    let mut batched_agent = DqnAgent::new(DqnAgentConfig::paper_default(OBS, 2), 1);
    let mut decisions: Vec<ActionDecision> = Vec::with_capacity(FLEET_SIZE);
    group.bench_function(format!("batched_decide_{FLEET_SIZE}x{OBS}"), |bench| {
        bench.iter(|| {
            batched_agent.decide_batch(&stacked, &has_obs, 100_000, true, &mut decisions);
            black_box(decisions.last().map(|d| d.action))
        })
    });

    let mut sequential_agent = DqnAgent::new(DqnAgentConfig::paper_default(OBS, 2), 1);
    let rows: Vec<Observation> = (0..FLEET_SIZE)
        .map(|r| Observation {
            tick: 0,
            features: Matrix::row_vector(stacked.row(r)),
        })
        .collect();
    group.bench_function(format!("sequential_decide_{FLEET_SIZE}x{OBS}"), |bench| {
        bench.iter(|| {
            let mut last = 0usize;
            for row in &rows {
                last = sequential_agent.decide(Some(row), 100_000, true).action;
            }
            black_box(last)
        })
    });
    group.finish();
}

/// End-to-end fleet tick (measure → batched decide → scatter → train →
/// finish) on an 8-cluster heterogeneous fleet, tuned phase.
fn bench_fleet_tick(c: &mut Criterion) {
    let hp = Hyperparameters {
        sampling_ticks_per_observation: 3,
        ..Hyperparameters::quick_test()
    };
    let mut daemon = Fleet::builder()
        .hyperparams(hp)
        .seed(9)
        .scenarios(ScenarioSpec::heterogeneous_mix(FLEET_SIZE))
        .build()
        .expect("valid fleet");
    // Warm past cold start so every tick carries observations.
    daemon.run(&FleetPlan::new().phase(Phase::Train { ticks: 12 }));

    let mut group = c.benchmark_group("fleet_step");
    group.sample_size(10);
    group.bench_function(format!("fleet_tick_tuned_{FLEET_SIZE}_clusters"), |bench| {
        bench.iter(|| {
            daemon.tick_all(PhaseKind::Tuned);
            black_box(daemon.cluster_ticks())
        })
    });
    group.bench_function(format!("fleet_tick_train_{FLEET_SIZE}_clusters"), |bench| {
        bench.iter(|| {
            daemon.tick_all(PhaseKind::Train);
            black_box(daemon.cluster_ticks())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_decide, bench_fleet_tick);
criterion_main!(benches);
