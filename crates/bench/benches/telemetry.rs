//! Criterion benchmark for the telemetry hot path: the raw cost of one
//! histogram/counter/gauge record and one `span!` round-trip (the price every
//! instrumented call site pays), plus the end-to-end overhead the spans add
//! to the Table 2 training step — instrumented vs `set_recording(false)` on
//! the same agent. Medians are recorded in `BENCH_telemetry.json` at the
//! repo root; the acceptance gate is instrumented/uninstrumented ≤ 1.03 on
//! the table2_600 shape.

use capes_drl::{DqnAgent, DqnAgentConfig};
use capes_replay::{ReplayConfig, SharedReplayDb};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

fn filled_db(observation_size: usize, ticks: u64) -> SharedReplayDb {
    let mut rng = StdRng::seed_from_u64(7);
    let db = SharedReplayDb::new(ReplayConfig {
        num_nodes: 1,
        pis_per_node: observation_size,
        ticks_per_observation: 1,
        missing_entry_tolerance: 0.2,
        capacity_ticks: ticks as usize + 10,
    });
    for t in 0..ticks {
        let pis: Vec<f64> = (0..observation_size)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        db.insert_snapshot(t, 0, pis);
        db.insert_objective(t, rng.gen_range(0.5..1.5));
        db.insert_action(t, rng.gen_range(0..5));
    }
    db
}

/// The primitives every instrumented call site is built from, measured on
/// pre-interned handles (interning is a one-time cost per name; the hot path
/// never touches the registry map).
fn bench_record_path(c: &mut Criterion) {
    let registry = capes_telemetry::global();
    let hist = registry.histogram("bench.telemetry.hist");
    let counter = registry.counter("bench.telemetry.count");
    let gauge = registry.gauge("bench.telemetry.gauge");

    let mut group = c.benchmark_group("telemetry");
    group.bench_function("histogram_record", |bench| {
        let mut v = 0u64;
        bench.iter(|| {
            v = v.wrapping_add(997);
            hist.record(black_box(v));
        })
    });
    group.bench_function("counter_inc", |bench| bench.iter(|| counter.inc()));
    group.bench_function("gauge_set", |bench| {
        let mut v = 0.0f64;
        bench.iter(|| {
            v += 1.0;
            gauge.set(black_box(v));
        })
    });
    // One full span round-trip: clock read on entry, clock read + histogram
    // record (+ journal push under CAPES_TRACE=on) on drop.
    capes_telemetry::set_recording(true);
    group.bench_function("span_round_trip", |bench| {
        bench.iter(|| {
            let _span = capes_telemetry::span!("bench.telemetry.span");
        })
    });
    // The same site with recording off: one relaxed load, no clock reads.
    capes_telemetry::set_recording(false);
    group.bench_function("span_disabled", |bench| {
        bench.iter(|| {
            let _span = capes_telemetry::span!("bench.telemetry.span");
        })
    });
    capes_telemetry::set_recording(true);
    group.finish();
}

/// The Table 2 training step with its spans live vs muted — the overhead the
/// whole instrumentation effort must keep under 3%. Both arms run the same
/// warmed agent; only the global recording switch differs.
fn bench_instrumented_train_step(c: &mut Criterion) {
    let obs = 600usize;
    let db = filled_db(obs, 500);
    let mut agent = DqnAgent::new(DqnAgentConfig::paper_default(obs, 2), 1);
    for _ in 0..3 {
        agent.train_from_db(&db).unwrap();
    }

    let mut group = c.benchmark_group("train_step_overhead_600");
    group.sample_size(10);
    capes_telemetry::set_recording(false);
    group.bench_function("uninstrumented", |bench| {
        bench.iter(|| black_box(agent.train_from_db(&db).unwrap()))
    });
    capes_telemetry::set_recording(true);
    group.bench_function("instrumented", |bench| {
        bench.iter(|| black_box(agent.train_from_db(&db).unwrap()))
    });
    group.finish();

    // Acceptance gate (full runs only; the smoke pass does one iteration per
    // bench, far too noisy to compare). Best-of-trials on both arms filters
    // scheduler noise out of a millisecond-scale measurement.
    let quick = std::env::var("CRITERION_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
        || std::env::args().any(|a| a == "--test");
    if !quick {
        const TRIALS: usize = 5;
        const STEPS: u32 = 20;
        let mut best = [f64::INFINITY; 2];
        for _ in 0..TRIALS {
            for (arm, recording) in [(0usize, false), (1usize, true)] {
                capes_telemetry::set_recording(recording);
                let start = Instant::now();
                for _ in 0..STEPS {
                    black_box(agent.train_from_db(&db).unwrap());
                }
                let per_step = start.elapsed().as_secs_f64() / STEPS as f64;
                best[arm] = best[arm].min(per_step);
            }
        }
        capes_telemetry::set_recording(true);
        let ratio = best[1] / best[0];
        println!(
            "train_step_overhead_600: uninstrumented {:.3} ms, instrumented {:.3} ms, \
             ratio {ratio:.4}",
            best[0] * 1e3,
            best[1] * 1e3,
        );
        assert!(
            ratio <= 1.03,
            "instrumented train step exceeds the 3% overhead budget (ratio {ratio:.4})"
        );
    }
}

criterion_group!(benches, bench_record_path, bench_instrumented_train_step);
criterion_main!(benches);
