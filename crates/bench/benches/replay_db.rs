//! Criterion benchmarks for the Replay Database: snapshot ingest, observation
//! assembly and Algorithm-1 minibatch construction (the data-plane costs
//! behind the Table-2 replay-DB rows).

use capes_replay::{ReplayConfig, ReplayDb};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn paper_config() -> ReplayConfig {
    // 5 clients × 44 PIs × 10-tick observations, as in the paper.
    ReplayConfig::default()
}

fn filled_db(ticks: u64) -> ReplayDb {
    let mut rng = StdRng::seed_from_u64(3);
    let config = paper_config();
    let mut db = ReplayDb::new(config);
    for t in 0..ticks {
        for n in 0..config.num_nodes {
            let pis: Vec<f64> = (0..config.pis_per_node)
                .map(|_| rng.gen_range(-1.0..1.0))
                .collect();
            db.insert_snapshot(t, n, pis);
        }
        db.insert_objective(t, rng.gen_range(100.0..500.0));
        db.insert_action(t, rng.gen_range(0..5));
    }
    db
}

fn bench_ingest(c: &mut Criterion) {
    let config = paper_config();
    let mut rng = StdRng::seed_from_u64(4);
    let pis: Vec<f64> = (0..config.pis_per_node).map(|_| rng.gen()).collect();
    c.bench_function("replay_insert_snapshot", |b| {
        let mut db = ReplayDb::new(config);
        let mut t = 0u64;
        b.iter(|| {
            db.insert_snapshot(t, (t % 5) as usize, pis.clone());
            t += 1;
        })
    });
}

fn bench_observation(c: &mut Criterion) {
    let db = filled_db(2_000);
    c.bench_function("replay_observation_at", |b| {
        b.iter(|| black_box(db.observation_at(1_500).unwrap()))
    });
}

fn bench_minibatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay_construct_minibatch");
    for &ticks in &[1_000u64, 10_000] {
        let db = filled_db(ticks);
        let mut rng = StdRng::seed_from_u64(5);
        group.bench_with_input(BenchmarkId::from_parameter(ticks), &ticks, |b, _| {
            b.iter(|| black_box(db.construct_minibatch(32, &mut rng).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ingest, bench_observation, bench_minibatch);
criterion_main!(benches);
