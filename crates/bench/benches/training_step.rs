//! Criterion benchmark for the full DQN training step (minibatch sampling +
//! Bellman targets + backpropagation + Adam + target-network update) — the
//! "duration of training step" row of Table 2 — plus action-selection
//! latency, GEMM kernel strategies (persistent pool vs per-call thread
//! spawning vs single-threaded), and the allocation-free vs legacy training
//! paths. Medians are recorded in `BENCH_train_step.json` at the repo root.

use capes_drl::{DqnAgent, DqnAgentConfig};
use capes_replay::{ReplayConfig, SharedReplayDb};
use capes_tensor::simd::{self, SimdLevel};
use capes_tensor::{MatmulStrategy, Matrix};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn filled_db(observation_size: usize, ticks: u64) -> SharedReplayDb {
    let mut rng = StdRng::seed_from_u64(7);
    let db = SharedReplayDb::new(ReplayConfig {
        num_nodes: 1,
        pis_per_node: observation_size,
        ticks_per_observation: 1,
        missing_entry_tolerance: 0.2,
        capacity_ticks: ticks as usize + 10,
    });
    for t in 0..ticks {
        let pis: Vec<f64> = (0..observation_size)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        db.insert_snapshot(t, 0, pis);
        db.insert_objective(t, rng.gen_range(0.5..1.5));
        db.insert_action(t, rng.gen_range(0..5));
    }
    db
}

fn bench_training_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("dqn_training_step");
    group.sample_size(10);
    for &(label, obs) in &[
        ("compact_240", 240usize),
        ("table2_600", 600usize),
        ("paper_2200", 2200usize),
    ] {
        let db = filled_db(obs, 500);
        let mut agent = DqnAgent::new(DqnAgentConfig::paper_default(obs, 2), 1);
        group.bench_with_input(BenchmarkId::new("minibatch_32", label), &obs, |bench, _| {
            bench.iter(|| black_box(agent.train_from_db(&db).unwrap()))
        });
    }
    group.finish();
}

/// Pooled-vs-scoped-vs-blocked GEMM on the training-step shapes: the batch
/// forward product (32 × 600 · 600 × 600) and a square hidden-layer-sized
/// product. On multi-core hosts this isolates the thread-spawn latency the
/// persistent pool eliminates; on single-core hosts both parallel strategies
/// degenerate to the blocked kernel.
fn bench_gemm_strategies(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let mut group = c.benchmark_group("gemm");
    for &(label, m, k, n) in &[
        ("batch_32x600x600", 32usize, 600usize, 600usize),
        ("square_600x600x600", 600, 600, 600),
    ] {
        let a = Matrix::from_vec(m, k, (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect());
        let b = Matrix::from_vec(k, n, (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect());
        let mut out = Matrix::zeros(m, n);
        for (name, strategy) in [
            ("blocked", MatmulStrategy::Blocked),
            ("scoped_threads", MatmulStrategy::Threaded),
            ("pooled", MatmulStrategy::Pooled),
        ] {
            group.bench_function(BenchmarkId::new(name, label), |bench| {
                bench.iter(|| {
                    a.matmul_into_with(&b, &mut out, strategy);
                    black_box(out.get(0, 0))
                })
            });
        }
    }
    // The explicit SIMD inner kernels against the portable scalar fallback,
    // on raw slices at a pinned level (no dispatch threshold, no pool):
    // `gemm/simd/*` is the detected vector level — AVX2+FMA where the CPU
    // has it, otherwise it degenerates to the scalar kernel and the two
    // entries read equal — and `gemm/simd_scalar/*` pins the fallback on the
    // same shapes (what `CAPES_SIMD=off` dispatches).
    for &(label, m, k, n) in &[
        ("batch_32x600x600", 32usize, 600usize, 600usize),
        ("square_600x600x600", 600, 600, 600),
    ] {
        let a: Vec<f64> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f64> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut out = vec![0.0; m * n];
        for (name, level) in [
            ("simd", simd::detected_level()),
            ("simd_scalar", SimdLevel::Scalar),
        ] {
            group.bench_function(BenchmarkId::new(name, label), |bench| {
                bench.iter(|| {
                    out.fill(0.0);
                    simd::gemm_rows_with(level, &a, &b, &mut out, m, k, n);
                    black_box(out[0])
                })
            });
        }
        // The packed-B kernel against the streaming kernel it is bit-identical
        // to, pinned on both sides of the auto gate: packing each 64 × n
        // k-panel into tile-major scratch trades one extra pass over the panel
        // for contiguous fragment loads in the register-tiled sweep.
        let level = simd::detected_level();
        group.bench_function(BenchmarkId::new("simd_packed", label), |bench| {
            bench.iter(|| {
                out.fill(0.0);
                simd::gemm_rows_packed_with(level, &a, &b, &mut out, m, k, n);
                black_box(out[0])
            })
        });
        group.bench_function(BenchmarkId::new("simd_unpacked", label), |bench| {
            bench.iter(|| {
                out.fill(0.0);
                simd::gemm_rows_unpacked_with(level, &a, &b, &mut out, m, k, n);
                black_box(out[0])
            })
        });
    }
    {
        // And the transpose-B kernel (the backward input-gradient product).
        let (m, k) = (32usize, 600usize);
        let a: Vec<f64> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let w: Vec<f64> = (0..k * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut out = vec![0.0; m * k];
        for (name, level) in [
            ("simd", simd::detected_level()),
            ("simd_scalar", SimdLevel::Scalar),
        ] {
            group.bench_function(BenchmarkId::new(name, "transpose_b_32x600x600"), |bench| {
                bench.iter(|| {
                    simd::gemm_tb_rows_with(level, &a, &w, &mut out, m, k, k);
                    black_box(out[0])
                })
            });
        }
    }

    // The k-blocked `a · bᵀ` kernel on the backward-pass shapes: dY (32 × n)
    // against a square weight matrix (n × n) read as its transpose, compared
    // with the pre-blocking kernel (one full-width dot product per output
    // element — it streamed the whole weight matrix once per output row; on
    // the paper_2200 shape that is a 38 MB matrix re-read 32 times).
    for &(label, m, k) in &[
        ("transpose_b_32x600x600", 32usize, 600usize),
        ("transpose_b_32x2200x2200", 32, 2200),
    ] {
        let a = Matrix::from_vec(m, k, (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect());
        let w = Matrix::from_vec(k, k, (0..k * k).map(|_| rng.gen_range(-1.0..1.0)).collect());
        let mut out = Matrix::zeros(m, k);
        group.bench_function(BenchmarkId::new("k_blocked", label), |bench| {
            bench.iter(|| {
                a.matmul_transpose_b_into(&w, &mut out);
                black_box(out.get(0, 0))
            })
        });
        group.bench_function(BenchmarkId::new("unblocked_reference", label), |bench| {
            bench.iter(|| {
                unblocked_tb(a.as_slice(), w.as_slice(), out.as_mut_slice(), m, k, k);
                black_box(out.get(0, 0))
            })
        });
    }
    group.finish();
}

/// The pre-blocking `a · bᵀ` kernel, kept as the bench baseline: one
/// four-accumulator dot product over the full reduction dimension per output
/// element.
fn unblocked_tb(a: &[f64], b: &[f64], out: &mut [f64], rows_a: usize, cols: usize, rows_b: usize) {
    for i in 0..rows_a {
        let a_row = &a[i * cols..][..cols];
        let out_row = &mut out[i * rows_b..][..rows_b];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = &b[j * cols..][..cols];
            let (mut c0, mut c1, mut c2, mut c3) = (0.0, 0.0, 0.0, 0.0);
            let mut ca = a_row.chunks_exact(4);
            let mut cb = b_row.chunks_exact(4);
            for (xa, xb) in (&mut ca).zip(&mut cb) {
                c0 += xa[0] * xb[0];
                c1 += xa[1] * xb[1];
                c2 += xa[2] * xb[2];
                c3 += xa[3] * xb[3];
            }
            let mut tail = 0.0;
            for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
                tail += x * y;
            }
            *o = (c0 + c2) + (c1 + c3) + tail;
        }
    }
}

/// Allocation-free vs legacy training path on the Table 2 shape: the fast
/// path samples into a persistent `ReplayBatch` and trains through reused
/// workspaces; the legacy path materialises a `Minibatch` of boxed
/// transitions first (the pre-optimization behaviour of `train_from_db`).
fn bench_train_paths(c: &mut Criterion) {
    let obs = 600usize;
    let db = filled_db(obs, 500);
    let mut group = c.benchmark_group("train_paths_600");
    group.sample_size(10);

    let mut fast_agent = DqnAgent::new(DqnAgentConfig::paper_default(obs, 2), 3);
    group.bench_function("alloc_free", |bench| {
        bench.iter(|| black_box(fast_agent.train_from_db(&db).unwrap()))
    });

    let mut legacy_agent = DqnAgent::new(DqnAgentConfig::paper_default(obs, 2), 3);
    let mut rng = StdRng::seed_from_u64(5);
    group.bench_function("legacy_minibatch", |bench| {
        bench.iter(|| {
            let batch = db.construct_minibatch(32, &mut rng).unwrap();
            black_box(legacy_agent.train_on_batch(&batch))
        })
    });
    group.finish();
}

fn bench_action_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("action_selection");
    for &(label, obs) in &[("compact_240", 240usize), ("paper_2200", 2200usize)] {
        let db = filled_db(obs, 50);
        let mut agent = DqnAgent::new(DqnAgentConfig::paper_default(obs, 2), 2);
        let observation = db.observation_at(30).unwrap();
        group.bench_function(label, |bench| {
            bench.iter(|| black_box(agent.select_action(&observation, 100_000)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_training_step,
    bench_gemm_strategies,
    bench_train_paths,
    bench_action_selection
);
criterion_main!(benches);
