//! Criterion benchmark for the full DQN training step (minibatch sampling +
//! Bellman targets + backpropagation + Adam + target-network update) — the
//! "duration of training step" row of Table 2 — plus action-selection latency.

use capes_drl::{DqnAgent, DqnAgentConfig};
use capes_replay::{ReplayConfig, SharedReplayDb};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn filled_db(observation_size: usize, ticks: u64) -> SharedReplayDb {
    let mut rng = StdRng::seed_from_u64(7);
    let db = SharedReplayDb::new(ReplayConfig {
        num_nodes: 1,
        pis_per_node: observation_size,
        ticks_per_observation: 1,
        missing_entry_tolerance: 0.2,
        capacity_ticks: ticks as usize + 10,
    });
    for t in 0..ticks {
        let pis: Vec<f64> = (0..observation_size)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        db.insert_snapshot(t, 0, pis);
        db.insert_objective(t, rng.gen_range(0.5..1.5));
        db.insert_action(t, rng.gen_range(0..5));
    }
    db
}

fn bench_training_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("dqn_training_step");
    group.sample_size(10);
    for &(label, obs) in &[("compact_240", 240usize), ("paper_2200", 2200usize)] {
        let db = filled_db(obs, 500);
        let mut agent = DqnAgent::new(DqnAgentConfig::paper_default(obs, 2), 1);
        group.bench_with_input(BenchmarkId::new("minibatch_32", label), &obs, |bench, _| {
            bench.iter(|| black_box(agent.train_from_db(&db).unwrap()))
        });
    }
    group.finish();
}

fn bench_action_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("action_selection");
    for &(label, obs) in &[("compact_240", 240usize), ("paper_2200", 2200usize)] {
        let db = filled_db(obs, 50);
        let mut agent = DqnAgent::new(DqnAgentConfig::paper_default(obs, 2), 2);
        let observation = db.observation_at(30).unwrap();
        group.bench_function(label, |bench| {
            bench.iter(|| black_box(agent.select_action(&observation, 100_000)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training_step, bench_action_selection);
criterion_main!(benches);
