//! Criterion benchmarks for the cluster simulator and the monitoring wire
//! protocol: per-tick simulation cost, indicator extraction, and message
//! encoding (the per-second costs a real deployment would pay on every node).

use capes_agents::{encode_message, Message, MonitoringAgent};
use capes_simstore::{Cluster, ClusterConfig, PiMode, Workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_cluster_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_tick");
    for (label, workload) in [
        ("random_1_9", Workload::random_rw(0.1)),
        ("fileserver", Workload::fileserver()),
        ("seq_write", Workload::sequential_write()),
    ] {
        let mut cluster = Cluster::new(ClusterConfig::default(), workload, 1);
        group.bench_function(label, |b| b.iter(|| black_box(cluster.step())));
    }
    group.finish();
}

fn bench_indicator_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("performance_indicators");
    for (label, mode) in [("compact", PiMode::Compact), ("full_44", PiMode::Full)] {
        let config = ClusterConfig {
            pi_mode: mode,
            ..Default::default()
        };
        let mut cluster = Cluster::new(config, Workload::fileserver(), 2);
        cluster.step();
        group.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, _| {
            b.iter(|| black_box(cluster.normalized_indicators(0)))
        });
    }
    group.finish();
}

fn bench_wire_encoding(c: &mut Criterion) {
    let config = ClusterConfig {
        pi_mode: PiMode::Full,
        ..Default::default()
    };
    let mut cluster = Cluster::new(config, Workload::fileserver(), 3);
    cluster.step();
    let mut monitor = MonitoringAgent::new(0, 0.0);
    // Prime the differential state so the benchmark measures steady-state
    // (mostly-changed) reports.
    monitor.sample(0, &cluster.normalized_indicators(0));
    c.bench_function("wire_encode_full_report", |b| {
        let mut tick = 1u64;
        b.iter(|| {
            cluster.step();
            let report = monitor.sample(tick, &cluster.normalized_indicators(0));
            tick += 1;
            black_box(encode_message(&Message::Report(report)))
        })
    });
}

criterion_group!(
    benches,
    bench_cluster_tick,
    bench_indicator_extraction,
    bench_wire_encoding
);
criterion_main!(benches);
