//! # capes-bench
//!
//! The benchmark harness: regenerates every table and figure of the CAPES
//! paper's evaluation on the simulated cluster.
//!
//! Each `fig*` / `table*` binary in `src/bin/` reproduces one artifact:
//!
//! | binary   | paper artifact | content |
//! |----------|----------------|---------|
//! | `fig2`   | Figure 2 | random R/W mixes: baseline vs. 12 h vs. 24 h training |
//! | `fig3`   | Figure 3 | fileserver & sequential write: baseline vs. CAPES |
//! | `fig4`   | Figure 4 | overfitting check: three later sessions reusing one model |
//! | `fig5`   | Figure 5 | prediction error over the training session |
//! | `fig6`   | Figure 6 | training-session throughput vs. the baselines |
//! | `table1` | Table 1  | hyperparameters in force + engine line-up |
//! | `table2` | Table 2  | technical measurements (training-step time, DB sizes, message sizes, engine comparison) |
//!
//! All binaries run a scaled-down configuration by default so the whole set
//! finishes in minutes; set `CAPES_FULL=1` to run paper-scale durations
//! (12 h / 24 h training = 43 200 / 86 400 simulated seconds).
//!
//! Everything is driven through the `capes` crate's builder + `Experiment`
//! API; [`compare_engines`] runs the DRL engine and the three search
//! comparators through one generic [`TuningEngine`] code path (the paper's
//! future-work comparison).
//!
//! The `benches/` directory contains Criterion micro-benchmarks for the
//! kernels behind Table 2 (forward/backward passes, training steps, minibatch
//! construction, simulator ticks) and ablation benches for the design choices
//! called out in DESIGN.md.

#![forbid(unsafe_code)]

use capes::prelude::*;
use capes_stats::ConfidenceInterval;
use serde::Serialize;

/// Experiment scale selected through the `CAPES_FULL` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-long scaled-down runs (default).
    Quick,
    /// Paper-scale durations (hours of simulated time).
    Full,
}

impl Scale {
    /// Reads the scale from the environment.
    pub fn from_env() -> Self {
        match std::env::var("CAPES_FULL") {
            Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Simulated seconds corresponding to the paper's 12-hour training run.
    pub fn twelve_hours(&self) -> u64 {
        match self {
            Scale::Quick => 6_000,
            Scale::Full => 43_200,
        }
    }

    /// Simulated seconds corresponding to the paper's 24-hour training run.
    pub fn twenty_four_hours(&self) -> u64 {
        match self {
            Scale::Quick => 10_000,
            Scale::Full => 86_400,
        }
    }

    /// Length of each baseline / tuned measurement phase.
    pub fn measurement_ticks(&self) -> u64 {
        match self {
            Scale::Quick => 600,
            Scale::Full => 7_200,
        }
    }

    /// Hyperparameters appropriate for the scale: the paper's values for the
    /// full scale, the compressed exploration schedule for the quick scale.
    pub fn hyperparameters(&self) -> Hyperparameters {
        match self {
            Scale::Quick => Hyperparameters::quick_test(),
            Scale::Full => Hyperparameters::paper(),
        }
    }
}

/// One measured bar of a figure: a label plus mean ± CI throughput.
#[derive(Debug, Clone, Serialize)]
pub struct Bar {
    /// Bar label (e.g. "baseline", "12 h").
    pub label: String,
    /// Mean steady-state throughput, MB/s.
    pub mean: f64,
    /// Half-width of the 95 % confidence interval.
    pub ci: f64,
}

impl Bar {
    /// Builds a bar from a session result.
    pub fn from_session(result: &SessionResult) -> Self {
        Bar {
            label: result.label.clone(),
            mean: result.mean_throughput(),
            ci: result.ci_half_width(),
        }
    }

    /// Builds a bar from a session result with an overriding label.
    pub fn from_session_labelled(label: impl Into<String>, result: &SessionResult) -> Self {
        Bar {
            label: label.into(),
            mean: result.mean_throughput(),
            ci: result.ci_half_width(),
        }
    }

    /// Builds a bar from a pre-computed confidence interval.
    pub fn from_interval(label: impl Into<String>, interval: &ConfidenceInterval) -> Self {
        Bar {
            label: label.into(),
            mean: interval.mean,
            ci: interval.half_width,
        }
    }
}

/// One row of a figure: a workload plus its bars.
#[derive(Debug, Clone, Serialize)]
pub struct FigureRow {
    /// Workload label (e.g. "random 1:9").
    pub workload: String,
    /// The bars, in presentation order.
    pub bars: Vec<Bar>,
}

impl FigureRow {
    /// Relative change of bar `index` over bar 0 (the baseline), in percent.
    pub fn improvement_pct(&self, index: usize) -> f64 {
        if self.bars[0].mean <= 0.0 {
            return 0.0;
        }
        (self.bars[index].mean / self.bars[0].mean - 1.0) * 100.0
    }
}

/// Prints a figure as an aligned text table (the same rows/series the paper
/// plots).
pub fn print_figure(title: &str, rows: &[FigureRow]) {
    println!("\n=== {title} ===");
    if rows.is_empty() {
        return;
    }
    print!("{:<22}", "workload");
    for bar in &rows[0].bars {
        print!("{:>24}", bar.label);
    }
    println!();
    for row in rows {
        print!("{:<22}", row.workload);
        for bar in &row.bars {
            print!("{:>16.1} ± {:<5.1}", bar.mean, bar.ci);
        }
        for i in 1..row.bars.len() {
            print!("  [{:+.1}%]", row.improvement_pct(i));
        }
        println!();
    }
}

/// Writes experiment output as JSON under `target/capes-results/` so
/// EXPERIMENTS.md can reference machine-readable results.
pub fn write_json<T: Serialize>(name: &str, rows: &T) {
    let dir = std::path::Path::new("target").join("capes-results");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.json"));
        if let Ok(json) = serde_json::to_string_pretty(rows) {
            let _ = std::fs::write(&path, json);
            println!("(results written to {})", path.display());
        }
    }
}

/// Builds a CAPES system around the simulated cluster for one workload,
/// using the default (DQN) engine.
pub fn build_system(workload: Workload, scale: Scale, seed: u64) -> CapesSystem<SimulatedLustre> {
    let target = SimulatedLustre::builder()
        .workload(workload)
        .seed(seed)
        .build();
    Capes::builder(target)
        .hyperparams(scale.hyperparameters())
        .seed(seed)
        .build()
        .expect("benchmark configuration is valid")
}

/// Runs the paper's standard experiment workflow for one workload: train for
/// `train_ticks`, then measure baseline and tuned throughput — expressed as a
/// declarative [`Experiment`] plan.
pub fn train_then_measure(
    workload: Workload,
    train_ticks: u64,
    scale: Scale,
    seed: u64,
) -> (SessionResult, SessionResult, CapesSystem<SimulatedLustre>) {
    let mut experiment = Experiment::new(build_system(workload, scale, seed))
        .phase(Phase::Train { ticks: train_ticks })
        .phase(Phase::Baseline {
            ticks: scale.measurement_ticks(),
        })
        .phase(Phase::Tuned {
            ticks: scale.measurement_ticks(),
            label: "tuned".into(),
        });
    let mut report = experiment.run();
    let tuned = report.sessions.pop().expect("tuned phase ran");
    let baseline = report.sessions.pop().expect("baseline phase ran");
    (baseline, tuned, experiment.into_system())
}

/// One engine's outcome in the unified comparison.
#[derive(Debug, Clone, Serialize)]
pub struct EngineRow {
    /// Engine name as reported by [`TuningEngine::name`].
    pub engine: String,
    /// Mean baseline throughput, MB/s (defaults, engine off).
    pub baseline_mean: f64,
    /// Mean tuned throughput, MB/s (engine exploiting).
    pub tuned_mean: f64,
    /// Tuned improvement over baseline, percent.
    pub improvement_pct: f64,
    /// Exploration/training ticks the engine actually consumed: the training
    /// phase length for the online DRL engine, the measured search cost for
    /// comparators that converge early.
    pub train_ticks: u64,
    /// Parameter values the engine settled on.
    pub final_params: Vec<f64>,
}

/// The engine line-up of the paper's future-work comparison: the DRL engine
/// (`None` = the builder's default) plus the three search comparators wrapped
/// as [`TuningEngine`]s.
pub fn engine_lineup(seed: u64, eval_ticks: u64) -> Vec<Option<Box<dyn TuningEngine>>> {
    vec![
        None,
        Some(Box::new(SearchEngine::new(StaticBaseline, eval_ticks))),
        Some(Box::new(SearchEngine::new(
            RandomSearch::new(40, seed ^ 0xface),
            eval_ticks,
        ))),
        Some(Box::new(SearchEngine::new(
            HillClimbing::new(40),
            eval_ticks,
        ))),
    ]
}

/// Drives the DRL engine and the three search comparators through one
/// generic baseline → train → tuned [`Experiment`] plan — the single
/// [`TuningEngine`] code path used by `table1` and `table2`.
pub fn compare_engines(
    workload: Workload,
    scale: Scale,
    seed: u64,
    train_ticks: u64,
    measure_ticks: u64,
) -> Vec<EngineRow> {
    engine_lineup(seed, (measure_ticks / 8).max(10))
        .into_iter()
        .map(|engine| {
            let target = SimulatedLustre::builder()
                .workload(workload.clone())
                .seed(seed)
                .build();
            let mut builder = Capes::builder(target)
                .hyperparams(scale.hyperparameters())
                .seed(seed);
            if let Some(engine) = engine {
                builder = builder.engine(engine);
            }
            let system = builder.build().expect("benchmark configuration is valid");
            let name = system.engine().name().to_string();
            let mut experiment = Experiment::new(system)
                .phase(Phase::Baseline {
                    ticks: measure_ticks,
                })
                .phase(Phase::Train { ticks: train_ticks })
                .phase(Phase::Tuned {
                    ticks: measure_ticks,
                    label: "tuned".into(),
                });
            let report = experiment.run();
            let ticks_consumed = experiment
                .system()
                .engine()
                .exploration_ticks_used()
                .unwrap_or(train_ticks);
            let baseline = report.baseline().expect("baseline phase ran");
            let tuned = report.session("tuned").expect("tuned phase ran");
            EngineRow {
                engine: name,
                baseline_mean: baseline.mean_throughput(),
                tuned_mean: tuned.mean_throughput(),
                improvement_pct: tuned.improvement_over(baseline) * 100.0,
                train_ticks: ticks_consumed,
                final_params: tuned.final_params.clone(),
            }
        })
        .collect()
}

/// Prints an engine comparison as an aligned text table.
pub fn print_engine_comparison(title: &str, rows: &[EngineRow]) {
    println!("\n=== {title} ===");
    println!(
        "{:<22}{:>16}{:>14}{:>14}{:>14}",
        "engine", "baseline MB/s", "tuned MB/s", "improvement", "train ticks"
    );
    for row in rows {
        println!(
            "{:<22}{:>16.1}{:>14.1}{:>13.1}%{:>14}",
            row.engine, row.baseline_mean, row.tuned_mean, row.improvement_pct, row.train_ticks
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_env_defaults_to_quick() {
        // Note: relies on CAPES_FULL not being set in the test environment.
        if std::env::var("CAPES_FULL").is_err() {
            assert_eq!(Scale::from_env(), Scale::Quick);
        }
        assert_eq!(Scale::Full.twelve_hours(), 43_200);
        assert_eq!(Scale::Full.twenty_four_hours(), 86_400);
        assert!(Scale::Quick.twelve_hours() < Scale::Full.twelve_hours());
        assert_eq!(Scale::Full.hyperparameters(), Hyperparameters::paper());
    }

    #[test]
    fn figure_row_improvement() {
        let row = FigureRow {
            workload: "x".into(),
            bars: vec![
                Bar {
                    label: "baseline".into(),
                    mean: 200.0,
                    ci: 5.0,
                },
                Bar {
                    label: "tuned".into(),
                    mean: 290.0,
                    ci: 5.0,
                },
            ],
        };
        assert!((row.improvement_pct(1) - 45.0).abs() < 1e-9);
    }

    #[test]
    fn compare_engines_drives_all_four_through_one_path() {
        let rows = compare_engines(Workload::random_rw(0.1), Scale::Quick, 42, 400, 120);
        assert_eq!(rows.len(), 4);
        let names: Vec<&str> = rows.iter().map(|r| r.engine.as_str()).collect();
        assert!(names.contains(&"deep RL (DQN)"));
        assert!(names.contains(&"static defaults"));
        assert!(names.contains(&"random search"));
        assert!(names.contains(&"hill climbing"));
        for row in &rows {
            assert!(row.baseline_mean > 0.0, "{}: no baseline", row.engine);
            assert!(row.tuned_mean > 0.0, "{}: no tuned mean", row.engine);
            assert_eq!(row.final_params.len(), 2);
        }
    }
}
