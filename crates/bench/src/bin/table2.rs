//! Table 2 — technical measurements of the CAPES evaluation.
//!
//! Reproduces every row of the paper's Table 2 on the simulated cluster:
//! training-step duration (single-threaded and multi-threaded CPU), replay-DB
//! record counts and sizes, DNN model size, performance indicators per client,
//! observation size, and the average monitoring-message size per client —
//! then compares the DRL engine against the three search comparators through
//! the unified `TuningEngine` experiment path (the paper's future-work
//! comparison).
//!
//! Run with `cargo run --release -p capes-bench --bin table2`.

use capes::prelude::*;
use capes_bench::{build_system, compare_engines, print_engine_comparison, write_json, Scale};
use capes_drl::{DqnAgent, DqnAgentConfig};
use capes_replay::ReplayConfig;
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();

    // Run a short training segment to populate the replay DB, agents and
    // monitoring statistics.
    let ticks = match scale {
        Scale::Quick => 2_000u64,
        Scale::Full => 20_000,
    };
    eprintln!("[table2] running {ticks} instrumented ticks…");
    let mut system = build_system(Workload::random_rw(0.1), scale, 7000);
    for _ in 0..ticks {
        system.training_tick();
    }

    // Training-step duration on the paper-sized network (44 PIs × 5 clients ×
    // 10 ticks = 2200 inputs) and on the compact network actually used above.
    let agent = system.dqn_agent().expect("default engine is the DQN");
    let compact_obs = agent.config().observation_size;
    let paper_obs = ReplayConfig::default().observation_size();
    let step_compact = time_training_step(compact_obs, 800);
    let step_paper = time_training_step(paper_obs, 30);

    let db_records = system.replay_db().len();
    let (db_memory, db_disk, obs_size) = system.replay_db().with_read(|db| {
        (
            db.memory_bytes(),
            db.disk_size_estimate(),
            db.config().observation_size(),
        )
    });
    let model_bytes = agent.q_network().model_size_bytes();
    let monitor_stats = system.monitor_stats();
    let mean_msg: f64 = monitor_stats
        .iter()
        .map(|s| s.mean_bytes_per_report())
        .sum::<f64>()
        / monitor_stats.len() as f64;

    println!(
        "\n=== Table 2: technical measurements ({} monitoring agents) ===\n",
        monitor_stats.len()
    );
    println!("{:<46}{:>18}   paper reported", "measurement", "value");
    println!(
        "{:<46}{:>15.4} s   ≈0.1 s (CPU)",
        format!("duration of training step ({}-input DNN)", paper_obs),
        step_paper
    );
    println!(
        "{:<46}{:>15.4} s   (compact network used in quick runs)",
        format!("duration of training step ({}-input DNN)", compact_obs),
        step_compact
    );
    println!(
        "{:<46}{:>18}   250 k (70 hours)",
        "number of records in the Replay DB", db_records
    );
    println!(
        "{:<46}{:>15.1} MB   84 MB",
        "size of the DNN model in memory",
        mb(model_size_for(paper_obs))
    );
    println!(
        "{:<46}{:>15.1} MB   (compact network)",
        "size of the compact DNN model in memory",
        mb(model_bytes)
    );
    println!(
        "{:<46}{:>15.1} MB   1.5 GB (250 k records)",
        "size of the Replay DB in memory",
        mb(db_memory)
    );
    println!(
        "{:<46}{:>15.1} MB   0.5 GB (250 k records)",
        "size of the Replay DB on disk (serialised)",
        mb(db_disk)
    );
    println!(
        "{:<46}{:>18}   44",
        "performance indicators per client",
        system.target().pis_per_node()
    );
    println!("{:<46}{:>18}   1760", "observation size (floats)", obs_size);
    println!(
        "{:<46}{:>15.1} B   ≈186 B",
        "average message size per client per second", mean_msg
    );

    let daemon = system.daemon_stats();
    println!(
        "{:<46}{:>18}   (not reported)",
        "actions broadcast during the run", daemon.actions_broadcast
    );

    // Engine comparison through the single TuningEngine code path: same
    // cluster, same experiment plan, four engines.
    let (train_ticks, measure_ticks) = match scale {
        Scale::Quick => (2_000, 400),
        Scale::Full => (scale.twelve_hours(), scale.measurement_ticks()),
    };
    eprintln!("\n[table2] engine comparison ({train_ticks} training ticks per engine)…");
    let rows = compare_engines(
        Workload::random_rw(0.1),
        scale,
        7100,
        train_ticks,
        measure_ticks,
    );
    print_engine_comparison(
        "engine comparison (random 1:9, one generic experiment plan per engine)",
        &rows,
    );
    write_json("table2_engines", &rows);
}

fn mb(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

/// Size of a paper-architecture Q-network with the given observation width.
fn model_size_for(observation_size: usize) -> usize {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(1);
    capes_drl::QNetwork::new(observation_size, 5, &mut rng).model_size_bytes()
}

/// Mean wall-clock duration of one 32-observation training step for a network
/// with the given observation width.
fn time_training_step(observation_size: usize, iterations: usize) -> f64 {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut rng = StdRng::seed_from_u64(2);
    let config = ReplayConfig {
        num_nodes: 1,
        pis_per_node: observation_size,
        ticks_per_observation: 1,
        missing_entry_tolerance: 0.2,
        capacity_ticks: 2_000,
    };
    let db = capes_replay::SharedReplayDb::new(config);
    for t in 0..300u64 {
        let pis: Vec<f64> = (0..observation_size)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        db.insert_snapshot(t, 0, pis);
        db.insert_objective(t, rng.gen_range(0.5..1.5));
        db.insert_action(t, rng.gen_range(0..5));
    }
    let mut agent = DqnAgent::new(DqnAgentConfig::paper_default(observation_size, 2), 3);
    // Warm up once (first minibatch pays allocation costs).
    let _ = agent.train_from_db(&db);
    let start = Instant::now();
    for _ in 0..iterations {
        let _ = agent.train_from_db(&db);
    }
    start.elapsed().as_secs_f64() / iterations as f64
}
