//! Figure 3 — Filebench fileserver and five-stream sequential-write
//! workloads: throughput before and after CAPES tuning.
//!
//! The paper reports a 17 % gain on the fileserver workload after 24 hours of
//! training (12 hours were not enough for this noisy workload) and a smaller
//! gain on sequential write.
//!
//! Run with `cargo run --release -p capes-bench --bin fig3`.

use capes::prelude::*;
use capes_bench::{print_figure, write_json, Bar, FigureRow, Scale};

fn main() {
    let scale = Scale::from_env();
    let workloads = [
        (
            "fileserver",
            Workload::fileserver(),
            scale.twenty_four_hours(),
        ),
        (
            "sequential write",
            Workload::sequential_write(),
            scale.twelve_hours(),
        ),
    ];

    let mut rows = Vec::new();
    for (i, (label, workload, train_ticks)) in workloads.into_iter().enumerate() {
        eprintln!("[fig3] workload {label}: training…");
        let (baseline, tuned, _system) =
            capes_bench::train_then_measure(workload, train_ticks, scale, 3000 + i as u64);
        rows.push(FigureRow {
            workload: label.to_string(),
            bars: vec![Bar::from_session(&baseline), Bar::from_session(&tuned)],
        });
    }

    print_figure(
        "Figure 3: fileserver and sequential-write workloads, baseline vs. CAPES",
        &rows,
    );
    write_json("fig3", &rows);
    println!("\npaper: fileserver +17% after 24h training; sequential write shows a smaller gain");
}
