//! Table 1 — the hyperparameters used in the CAPES evaluation.
//!
//! Prints the hyperparameters in force (paper values, and the scaled-down
//! quick-run values used by the default benchmark configuration) in the same
//! layout as the paper's table, then demonstrates the hyperparameters in
//! action by driving the DRL engine and the three search comparators through
//! the unified `TuningEngine` experiment path on a short run.
//!
//! Run with `cargo run --release -p capes-bench --bin table1`.

use capes::prelude::*;
use capes_bench::{compare_engines, print_engine_comparison, write_json, Scale};

fn row(name: &str, paper: String, quick: String, description: &str) {
    println!("{name:<34}{paper:>14}{quick:>14}   {description}");
}

fn main() {
    let paper = Hyperparameters::paper();
    let quick = Hyperparameters::quick_test();

    println!("=== Table 1: hyperparameters (paper values vs. quick-run values) ===\n");
    println!(
        "{:<34}{:>14}{:>14}   description",
        "hyperparameter", "paper", "quick"
    );
    row(
        "action tick length",
        format!("{} s", paper.action_tick_length),
        format!("{} s", quick.action_tick_length),
        "one action is performed every second",
    );
    row(
        "epsilon initial value",
        format!("{}", paper.epsilon_initial),
        format!("{}", quick.epsilon_initial),
        "all actions random at the start of training",
    );
    row(
        "epsilon final value",
        format!("{}", paper.epsilon_final),
        format!("{}", quick.epsilon_final),
        "5% random actions after the exploration period",
    );
    row(
        "discount rate (gamma)",
        format!("{}", paper.discount_rate),
        format!("{}", quick.discount_rate),
        "as used in Equation 1",
    );
    row(
        "initial exploration period",
        format!("{} s", paper.exploration_period_ticks),
        format!("{} s", quick.exploration_period_ticks),
        "epsilon anneals linearly over this period",
    );
    row(
        "minibatch size",
        format!("{}", paper.minibatch_size),
        format!("{}", quick.minibatch_size),
        "observations per SGD update",
    );
    row(
        "missing entry tolerance",
        format!("{}%", paper.missing_entry_tolerance * 100.0),
        format!("{}%", quick.missing_entry_tolerance * 100.0),
        "missing data tolerated per observation",
    );
    row(
        "number of hidden layers",
        format!("{}", paper.num_hidden_layers),
        format!("{}", quick.num_hidden_layers),
        "hidden layers are the same width as the input",
    );
    row(
        "Adam learning rate",
        format!("{}", paper.adam_learning_rate),
        format!("{}", quick.adam_learning_rate),
        "learning rate of the Adam optimizer",
    );
    row(
        "sampling tick length",
        format!("{} s", paper.sampling_tick_length),
        format!("{} s", quick.sampling_tick_length),
        "one sample per second",
    );
    row(
        "sampling ticks per observation",
        format!("{}", paper.sampling_ticks_per_observation),
        format!("{}", quick.sampling_ticks_per_observation),
        "seconds of history packed into one observation",
    );
    row(
        "target network update rate (alpha)",
        format!("{}", paper.target_update_rate),
        format!("{}", quick.target_update_rate),
        "theta_target = theta_target*(1-alpha) + theta*alpha",
    );
    row(
        "reward scale (reproduction only)",
        format!("{}", paper.reward_scale),
        format!("{:.4}", quick.reward_scale),
        "objective value multiplier before storage as reward",
    );

    // The hidden-layer width of the paper (600) derives from the observation
    // size; show the corresponding value for the bundled simulator.
    let target = SimulatedLustre::builder().build();
    let obs = quick.observation_size(target.num_nodes(), target.pis_per_node());
    println!(
        "\nhidden layer size: equals the observation width — {} for the default \
         (compact-PI) simulator configuration, {} for the full 44-PI configuration \
         (paper: 600).",
        obs,
        paper.observation_size(5, 44)
    );

    // The hyperparameters in action: every engine — the DQN and the three
    // search comparators — driven through the same builder + Experiment code
    // path on a short write-heavy run.
    let scale = Scale::from_env();
    let (train_ticks, measure_ticks) = match scale {
        Scale::Quick => (1_500, 300),
        Scale::Full => (scale.twelve_hours(), scale.measurement_ticks()),
    };
    eprintln!("\n[table1] engine line-up ({train_ticks} training ticks per engine)…");
    let rows = compare_engines(
        Workload::random_rw(0.1),
        scale,
        1000,
        train_ticks,
        measure_ticks,
    );
    print_engine_comparison(
        "engine line-up under these hyperparameters (random 1:9, short run)",
        &rows,
    );
    write_json("table1_engines", &rows);
}
