//! Figure 5 — prediction error over the training session.
//!
//! The prediction error is the difference between the Q-network's predicted
//! performance and the measured performance one second later; the paper shows
//! it decreasing steadily after an initial warm-up.
//!
//! Run with `cargo run --release -p capes-bench --bin fig5`.

use capes::prelude::*;
use capes_bench::{build_system, write_json, Bar, FigureRow, Scale};

fn main() {
    let scale = Scale::from_env();
    eprintln!("[fig5] training…");
    let mut experiment = Experiment::new(build_system(Workload::random_rw(0.1), scale, 5000))
        .phase(Phase::Train {
            ticks: scale.twelve_hours(),
        });
    let report = experiment.run();
    let result = &report.sessions[0];

    // Bucket the prediction errors into a fixed number of bins over time (the
    // figure's x axis) and report the mean error per bin.
    let errors = &result.prediction_errors;
    let bins = 24usize.min(errors.len().max(1));
    let per_bin = errors.len().div_ceil(bins).max(1);
    println!("\n=== Figure 5: prediction error during the training session ===");
    println!("{:<24}{:>20}", "training progress", "mean prediction error");
    let mut rows = Vec::new();
    for (b, chunk) in errors.chunks(per_bin).enumerate() {
        let mean = chunk.iter().map(|(_, e)| *e).sum::<f64>() / chunk.len() as f64;
        let progress = (b + 1) as f64 / bins as f64 * 100.0;
        println!("{:>20.0}%   {:>20.4}", progress, mean);
        rows.push(FigureRow {
            workload: format!("{progress:.0}%"),
            bars: vec![Bar {
                label: "prediction error".into(),
                mean,
                ci: 0.0,
            }],
        });
    }
    write_json("fig5", &rows);

    if rows.len() >= 4 {
        let early = rows[1].bars[0].mean;
        let late = rows.last().unwrap().bars[0].mean;
        println!(
            "\nearly-training error {early:.4} → late-training error {late:.4} ({})",
            if late < early {
                "decreasing, as in the paper"
            } else {
                "NOT decreasing — inspect the run"
            }
        );
    }
}
