//! Figure 6 — the training session's impact on the workload.
//!
//! Training performs random (exploratory) actions on the production system,
//! so the paper checks that the overall throughput of a long training session
//! is comparable to baseline throughput measured at three different times.
//!
//! Run with `cargo run --release -p capes-bench --bin fig6`.

use capes::prelude::*;
use capes_bench::{build_system, print_figure, write_json, Bar, FigureRow, Scale};

fn main() {
    let scale = Scale::from_env();

    // Three baseline measurements taken at different times (different seeds /
    // cluster drift), as in the paper.
    let mut rows = Vec::new();
    for i in 0..3u64 {
        eprintln!("[fig6] baseline measurement {}…", i + 1);
        let mut system = build_system(Workload::random_rw(0.1), scale, 6000 + i);
        system
            .target_mut()
            .cluster_mut()
            .perturb_session(0.2 * i as f64, 60 * 24 * i);
        let mut experiment = Experiment::new(system).phase(Phase::Baseline {
            ticks: scale.measurement_ticks() * 2,
        });
        let report = experiment.run();
        rows.push(FigureRow {
            workload: format!("baseline {}", i + 1),
            bars: vec![Bar::from_session_labelled(
                format!("baseline {}", i + 1),
                &report.sessions[0],
            )],
        });
    }

    // One long training session ("70 hours" in the paper; scaled here).
    let training_ticks = match scale {
        Scale::Quick => 3 * scale.twelve_hours(),
        Scale::Full => 70 * 3600,
    };
    eprintln!("[fig6] training session ({training_ticks} ticks)…");
    let mut experiment = Experiment::new(build_system(Workload::random_rw(0.1), scale, 6100))
        .phase(Phase::Train {
            ticks: training_ticks,
        });
    let report = experiment.run();
    rows.push(FigureRow {
        workload: "training session".into(),
        bars: vec![Bar::from_session_labelled(
            "overall throughput",
            &report.sessions[0],
        )],
    });

    print_figure(
        "Figure 6: baseline throughputs vs. training-session overall throughput",
        &rows,
    );
    write_json("fig6", &rows);

    let baselines: Vec<f64> = rows[..3].iter().map(|r| r.bars[0].mean).collect();
    let training_mean = rows[3].bars[0].mean;
    let min_baseline = baselines.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "\ntraining-session throughput is {:.1}% of the lowest baseline \
         (paper: comparable to the baselines)",
        training_mean / min_baseline * 100.0
    );
}
