//! Figure 2 — random read/write workloads: throughput before tuning (default
//! Lustre settings), after "12 hours" of training and after "24 hours" of
//! training, at read:write ratios 9:1, 4:1, 1:1, 1:4 and 1:9.
//!
//! The paper's headline numbers: write-heavy mixes gain the most (up to 45 %
//! at 1:9), read-heavy mixes see little change, and 24 h of training helps
//! mainly on the noisier read-heavy mixes.
//!
//! Run with `cargo run --release -p capes-bench --bin fig2`
//! (`CAPES_FULL=1` for paper-scale training durations).

use capes::prelude::*;
use capes_bench::{print_figure, write_json, Bar, FigureRow, Scale};

fn main() {
    let scale = Scale::from_env();
    let ratios = [0.9, 0.8, 0.5, 0.2, 0.1];
    let mut rows = Vec::new();

    for (i, &read_fraction) in ratios.iter().enumerate() {
        let workload = Workload::random_rw(read_fraction);
        let label = workload.kind().label();
        eprintln!("[fig2] workload {label}: training ({:?} scale)…", scale);
        let seed = 2000 + i as u64;

        // 12-hour training run.
        let (baseline, tuned_12h, mut system) =
            capes_bench::train_then_measure(workload, scale.twelve_hours(), scale, seed);

        // Continue training to the 24-hour mark on the same system.
        let extra = scale.twenty_four_hours() - scale.twelve_hours();
        run_training_session(&mut system, extra);
        let tuned_24h =
            run_tuning_session(&mut system, scale.measurement_ticks(), "after 24h training");

        rows.push(FigureRow {
            workload: label,
            bars: vec![
                Bar {
                    label: "baseline".into(),
                    ..Bar::from_session(&baseline)
                },
                Bar {
                    label: "after 12h".into(),
                    mean: tuned_12h.mean_throughput(),
                    ci: tuned_12h.ci_half_width(),
                },
                Bar {
                    label: "after 24h".into(),
                    mean: tuned_24h.mean_throughput(),
                    ci: tuned_24h.ci_half_width(),
                },
            ],
        });
    }

    print_figure(
        "Figure 2: random read/write workloads, baseline vs. 12h vs. 24h training",
        &rows,
    );
    write_json("fig2", &rows);

    // Qualitative check mirroring the paper's reading of the figure.
    let write_heavy_gain = rows.last().map(|r| r.improvement_pct(2)).unwrap_or(0.0);
    let read_heavy_gain = rows.first().map(|r| r.improvement_pct(2)).unwrap_or(0.0);
    println!(
        "\nwrite-heavy (1:9) gain: {write_heavy_gain:+.1}%   read-heavy (9:1) gain: {read_heavy_gain:+.1}%"
    );
    println!("paper: +45% at 1:9, no obvious effect at 9:1");
}
