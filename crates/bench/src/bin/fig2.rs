//! Figure 2 — random read/write workloads: throughput before tuning (default
//! Lustre settings), after "12 hours" of training and after "24 hours" of
//! training, at read:write ratios 9:1, 4:1, 1:1, 1:4 and 1:9.
//!
//! The paper's headline numbers: write-heavy mixes gain the most (up to 45 %
//! at 1:9), read-heavy mixes see little change, and 24 h of training helps
//! mainly on the noisier read-heavy mixes.
//!
//! Run with `cargo run --release -p capes-bench --bin fig2`
//! (`CAPES_FULL=1` for paper-scale training durations).

use capes::prelude::*;
use capes_bench::{build_system, print_figure, write_json, Bar, FigureRow, Scale};

fn main() {
    let scale = Scale::from_env();
    let ratios = [0.9, 0.8, 0.5, 0.2, 0.1];
    let mut rows = Vec::new();

    for (i, &read_fraction) in ratios.iter().enumerate() {
        let workload = Workload::random_rw(read_fraction);
        let label = workload.kind().label();
        eprintln!("[fig2] workload {label}: training ({scale:?} scale)…");
        let seed = 2000 + i as u64;

        // One experiment plan covers the whole 12 h → 24 h protocol: train to
        // the 12-hour mark, measure baseline and tuned, train the remaining
        // 12 hours on the same system, measure tuned again.
        let mut experiment = Experiment::new(build_system(workload, scale, seed))
            .phase(Phase::Train {
                ticks: scale.twelve_hours(),
            })
            .phase(Phase::Baseline {
                ticks: scale.measurement_ticks(),
            })
            .phase(Phase::Tuned {
                ticks: scale.measurement_ticks(),
                label: "after 12h".into(),
            })
            .phase(Phase::Train {
                ticks: scale.twenty_four_hours() - scale.twelve_hours(),
            })
            .phase(Phase::Tuned {
                ticks: scale.measurement_ticks(),
                label: "after 24h".into(),
            });
        let report = experiment.run();

        rows.push(FigureRow {
            workload: label,
            bars: vec![
                Bar::from_session(report.baseline().expect("baseline phase ran")),
                Bar::from_session(report.session("after 12h").expect("12h phase ran")),
                Bar::from_session(report.session("after 24h").expect("24h phase ran")),
            ],
        });
    }

    print_figure(
        "Figure 2: random read/write workloads, baseline vs. 12h vs. 24h training",
        &rows,
    );
    write_json("fig2", &rows);

    // Qualitative check mirroring the paper's reading of the figure.
    let write_heavy_gain = rows.last().map(|r| r.improvement_pct(2)).unwrap_or(0.0);
    let read_heavy_gain = rows.first().map(|r| r.improvement_pct(2)).unwrap_or(0.0);
    println!(
        "\nwrite-heavy (1:9) gain: {write_heavy_gain:+.1}%   read-heavy (9:1) gain: {read_heavy_gain:+.1}%"
    );
    println!("paper: +45% at 1:9, no obvious effect at 9:1");
}
