//! Figure 4 — the overfitting check: one trained model reused in three
//! sessions spread out over "two weeks", with unrelated file operations
//! (fragmentation, layout drift) in between. Each session measures two hours
//! of baseline and two hours of tuned throughput.
//!
//! The paper reports gains of 13–36 % across the three sessions and concludes
//! there is no obvious overfitting.
//!
//! Run with `cargo run --release -p capes-bench --bin fig4`.

use capes::prelude::*;
use capes_bench::{build_system, print_figure, write_json, Bar, FigureRow, Scale};

fn main() {
    let scale = Scale::from_env();
    let checkpoint = std::env::temp_dir().join("capes-fig4-model.json");

    // Train once on the fileserver workload and checkpoint the model.
    eprintln!("[fig4] initial training…");
    let mut trainer =
        Experiment::new(build_system(Workload::fileserver(), scale, 4000)).phase(Phase::Train {
            ticks: scale.twenty_four_hours(),
        });
    trainer.run();
    trainer
        .system()
        .save_checkpoint(&checkpoint)
        .expect("checkpoint save failed");

    // Three later sessions with drifted cluster state.
    let mut rows = Vec::new();
    for session in 0..3u64 {
        eprintln!("[fig4] session {}…", session + 1);
        let mut system = build_system(Workload::fileserver(), scale, 4100 + session);
        // Unrelated file operations between sessions: fragmentation grows and
        // the simulated clock moves by multiple days.
        let fragmentation = 0.3 + 0.35 * session as f64;
        system
            .target_mut()
            .cluster_mut()
            .perturb_session(fragmentation.min(1.0), 60 * 24 * (4 * session + 3));
        system
            .restore_checkpoint(&checkpoint, 4200 + session)
            .expect("checkpoint restore failed");

        let mut experiment = Experiment::new(system)
            .phase(Phase::Baseline {
                ticks: scale.measurement_ticks(),
            })
            .phase(Phase::Tuned {
                ticks: scale.measurement_ticks(),
                label: "tuned".into(),
            });
        let report = experiment.run();
        rows.push(FigureRow {
            workload: format!("session {}", session + 1),
            bars: report.sessions.iter().map(Bar::from_session).collect(),
        });
    }

    print_figure(
        "Figure 4: fileserver throughput with and without CAPES tuning, three sessions",
        &rows,
    );
    write_json("fig4", &rows);
    println!("\npaper: +13% to +36% across the three sessions (no obvious overfitting)");
    std::fs::remove_file(&checkpoint).ok();
}
