//! Quickstart: tune the simulated Lustre cluster's congestion window and I/O
//! rate limit with CAPES and compare against the untuned baseline.
//!
//! This follows the paper's evaluation workflow (Appendix A.4), expressed as
//! a declarative `Experiment` plan:
//!
//! 1. set up the target system (here: the bundled cluster simulator running
//!    the write-heavy 1:9 random read/write workload);
//! 2. assemble CAPES around it with the fallible builder;
//! 3. run an online training phase, then measure the default-parameter
//!    baseline and the tuned performance.
//!
//! Run with `cargo run --release --example quickstart`. Set `CAPES_TRAIN_TICKS`
//! to lengthen the training session (43 200 reproduces the paper's 12-hour
//! run).

use capes::prelude::*;

fn env_ticks(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let train_ticks = env_ticks("CAPES_TRAIN_TICKS", 6_000);
    let measure_ticks = env_ticks("CAPES_MEASURE_TICKS", 600);

    // 1. The target system: the paper's 4-server / 5-client cluster at
    //    saturation under a 1:9 read:write random workload.
    let target = SimulatedLustre::builder()
        .workload(Workload::random_rw(0.1))
        .seed(2017)
        .build();
    println!("target system : {}", target.describe());

    // 2. Assemble CAPES around it. `quick_test()` keeps the paper's algorithmic
    //    hyperparameters (γ, α, minibatch size, ε schedule shape) but shortens
    //    the exploration period so a laptop-scale run converges. Invalid
    //    configurations come back as typed `CapesError`s instead of panics.
    let system = Capes::builder(target)
        .hyperparams(Hyperparameters::quick_test())
        .seed(2017)
        .build()
        .expect("valid configuration");

    // 3. The paper's workflow as one declarative plan.
    println!("training for {train_ticks} simulated seconds…");
    let mut experiment = Experiment::new(system)
        .phase(Phase::Train { ticks: train_ticks })
        .phase(Phase::Baseline {
            ticks: measure_ticks,
        })
        .phase(Phase::Tuned {
            ticks: measure_ticks,
            label: "tuned (CAPES)".into(),
        });
    let report = experiment.run();

    let training = &report.sessions[0];
    println!(
        "  training session mean throughput: {:.1} MB/s (overall, including exploration)",
        training.mean_throughput()
    );
    let baseline = report.baseline().expect("baseline phase ran");
    println!("  {}", baseline.summary());
    let tuned = report.session("tuned (CAPES)").expect("tuned phase ran");
    println!("  {}", tuned.summary());
    println!(
        "  final parameter values: max_rpcs_in_flight = {:.0}, io_rate_limit = {:.0}",
        tuned.final_params[0], tuned.final_params[1]
    );
    println!(
        "  improvement over baseline: {:+.1}%",
        report
            .improvement_over_baseline("tuned (CAPES)")
            .unwrap_or(0.0)
            * 100.0
    );
}
