//! Quickstart: tune the simulated Lustre cluster's congestion window and I/O
//! rate limit with CAPES and compare against the untuned baseline.
//!
//! This follows the paper's evaluation workflow (Appendix A.4):
//!
//! 1. set up the target system (here: the bundled cluster simulator running
//!    the write-heavy 1:9 random read/write workload);
//! 2. run an online training session;
//! 3. measure the baseline with default parameters;
//! 4. measure the tuned performance.
//!
//! Run with `cargo run --release --example quickstart`. Set `CAPES_TRAIN_TICKS`
//! to lengthen the training session (43 200 reproduces the paper's 12-hour
//! run).

use capes::prelude::*;

fn env_ticks(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let train_ticks = env_ticks("CAPES_TRAIN_TICKS", 6_000);
    let measure_ticks = env_ticks("CAPES_MEASURE_TICKS", 600);

    // 1. The target system: the paper's 4-server / 5-client cluster at
    //    saturation under a 1:9 read:write random workload.
    let target = SimulatedLustre::builder()
        .workload(Workload::random_rw(0.1))
        .seed(2017)
        .build();
    println!("target system : {}", target.describe());

    // 2. Assemble CAPES around it. `quick_test()` keeps the paper's algorithmic
    //    hyperparameters (γ, α, minibatch size, ε schedule shape) but shortens
    //    the exploration period so a laptop-scale run converges.
    let hp = Hyperparameters::quick_test();
    let mut system = CapesSystem::new(target, hp, 2017);

    // 3. Online training session.
    println!("training for {train_ticks} simulated seconds…");
    let training = run_training_session(&mut system, train_ticks);
    println!(
        "  training session mean throughput: {:.1} MB/s (overall, including exploration)",
        training.mean_throughput()
    );

    // 4. Baseline measurement with default Lustre settings.
    let baseline = run_baseline_session(&mut system, measure_ticks, "baseline (defaults)");
    println!("  {}", baseline.summary());

    // 5. Tuned measurement with the trained policy acting greedily.
    let tuned = run_tuning_session(&mut system, measure_ticks, "tuned (CAPES)");
    println!("  {}", tuned.summary());
    println!(
        "  final parameter values: max_rpcs_in_flight = {:.0}, io_rate_limit = {:.0}",
        tuned.final_params[0], tuned.final_params[1]
    );
    println!(
        "  improvement over baseline: {:+.1}%",
        tuned.improvement_over(&baseline) * 100.0
    );
}
