//! Dynamic workloads and the exploration bump.
//!
//! One of CAPES's selling points over one-time search methods is that it "can
//! run continuously to adapt to dynamically changing workloads" (§1), and §3.6
//! describes how the Interface Daemon bumps ε back up to 0.2 whenever the job
//! scheduler starts a new workload. This example alternates between a
//! write-heavy random workload and the sequential-write workload, notifying
//! CAPES at each switch, and reports per-phase throughput.
//!
//! Run with `cargo run --release --example dynamic_workload`.

use capes::prelude::*;

fn main() {
    let phase_ticks: u64 = std::env::var("CAPES_PHASE_TICKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3_000);

    let target = SimulatedLustre::builder()
        .workload(Workload::random_rw(0.1))
        .seed(5)
        .build();
    let mut system = CapesSystem::new(target, Hyperparameters::quick_test(), 5);

    let phases = [
        ("random 1:9", Workload::random_rw(0.1)),
        ("sequential write", Workload::sequential_write()),
        ("random 1:9 (again)", Workload::random_rw(0.1)),
        ("fileserver", Workload::fileserver()),
    ];

    println!("alternating workloads, {phase_ticks} ticks per phase\n");
    for (i, (label, workload)) in phases.into_iter().enumerate() {
        if i > 0 {
            // The job scheduler tells CAPES that a new workload is starting;
            // exploration is bumped so the policy adapts instead of being
            // stuck in the previous workload's local maximum.
            system.target_mut().cluster_mut().set_workload(workload);
            system.notify_workload_change();
        }
        let result = run_training_session(&mut system, phase_ticks);
        println!(
            "phase {:>20}: {:>7.1} ± {:.1} MB/s   (window = {:.0}, rate limit = {:.0})",
            label,
            result.mean_throughput(),
            result.ci_half_width(),
            result.final_params[0],
            result.final_params[1],
        );
    }

    println!("\ntraining never stops: CAPES keeps adapting as the workload mix changes.");
}
