//! Dynamic workloads and the exploration bump.
//!
//! One of CAPES's selling points over one-time search methods is that it "can
//! run continuously to adapt to dynamically changing workloads" (§1), and §3.6
//! describes how the Interface Daemon bumps ε back up to 0.2 whenever the job
//! scheduler starts a new workload. This example alternates between a
//! write-heavy random workload and the sequential-write workload, notifying
//! CAPES at each switch, and reports per-phase throughput. A `TickObserver`
//! registered on the builder streams exploration telemetry as the run
//! progresses.
//!
//! Run with `cargo run --release --example dynamic_workload`.

use capes::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn main() {
    let phase_ticks: u64 = std::env::var("CAPES_PHASE_TICKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3_000);

    let target = SimulatedLustre::builder()
        .workload(Workload::random_rw(0.1))
        .seed(5)
        .build();

    // A per-tick observer counting exploratory actions: monitoring consumers
    // see the stream live instead of polling the system. Observers must be
    // `Send` (the fleet daemon shards member systems across worker threads),
    // so the counter is an atomic.
    let explored: Arc<AtomicU64> = Arc::new(AtomicU64::new(0));
    let sink = explored.clone();
    let system = Capes::builder(target)
        .hyperparams(Hyperparameters::quick_test())
        .seed(5)
        .observer(move |_kind: PhaseKind, tick: &SystemTick| {
            if tick.explored {
                sink.fetch_add(1, Ordering::Relaxed);
            }
        })
        .build()
        .expect("valid configuration");

    let phases = [
        ("random 1:9", Workload::random_rw(0.1)),
        ("sequential write", Workload::sequential_write()),
        ("random 1:9 (again)", Workload::random_rw(0.1)),
        ("fileserver", Workload::fileserver()),
    ];

    println!("alternating workloads, {phase_ticks} ticks per phase\n");
    let mut experiment = Experiment::new(system);
    for (i, (label, workload)) in phases.into_iter().enumerate() {
        if i > 0 {
            // The job scheduler tells CAPES that a new workload is starting;
            // exploration is bumped so the policy adapts instead of being
            // stuck in the previous workload's local maximum.
            let system = experiment.system_mut();
            system.target_mut().cluster_mut().set_workload(workload);
            system.notify_workload_change();
        }
        let explored_before = explored.load(Ordering::Relaxed);
        experiment = experiment.phase(Phase::Train { ticks: phase_ticks });
        let report = experiment.run();
        let result = &report.sessions[0];
        let explored_in_phase = explored.load(Ordering::Relaxed) - explored_before;
        println!(
            "phase {:>20}: {:>7.1} ± {:.1} MB/s   (window = {:.0}, rate limit = {:.0}, {} exploratory ticks)",
            label,
            result.mean_throughput(),
            result.ci_half_width(),
            result.final_params[0],
            result.final_params[1],
            explored_in_phase,
        );
    }

    println!("\ntraining never stops: CAPES keeps adapting as the workload mix changes.");
}
