//! Live fleet observability (`--features net`): an 8-cluster socket fleet
//! runs in a background thread while the main thread scrapes the reactor's
//! `/metrics` endpoint — plain HTTP on the same port the member clusters
//! use for framed traffic — and prints the live p99 fleet-tick latency and
//! every cluster's objective gauge as training progresses.
//!
//! ```bash
//! cargo run --release --features net --example fleet_observed
//! ```
//!
//! Ticks can be scaled with `CAPES_FLEET_TRAIN_TICKS` /
//! `CAPES_FLEET_MEASURE_TICKS` (as in `fleet_tuning.rs`).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use capes::{Hyperparameters, Phase, Transport};
use capes_fleet::{Fleet, FleetPlan, ScenarioSpec};

fn env_ticks(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One `/metrics` scrape: plain HTTP/1.0 GET, body returned as text.
fn scrape(addr: SocketAddr) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    match response.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_string()),
        None => Ok(String::new()),
    }
}

/// The value of the first exposition line whose name part equals `series`.
fn series_value(body: &str, series: &str) -> Option<f64> {
    body.lines()
        .filter(|l| !l.starts_with('#'))
        .find_map(|line| {
            let (name, value) = line.rsplit_once(' ')?;
            (name == series).then(|| value.parse().ok())?
        })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let train_ticks = env_ticks("CAPES_FLEET_TRAIN_TICKS", 2_000);
    let measure_ticks = env_ticks("CAPES_FLEET_MEASURE_TICKS", 250);

    let scenarios = ScenarioSpec::heterogeneous_mix(8);
    let cluster_names: Vec<String> = scenarios.iter().map(|s| s.name.clone()).collect();
    let mut daemon = Fleet::builder()
        .hyperparams(Hyperparameters::quick_test())
        .seed(7)
        .transport(Transport::Socket)
        .scenarios(scenarios)
        .build()?;
    let addr = daemon.socket_addr().expect("socket transport is on");
    println!("fleet daemon on {addr} — scraping /metrics while it trains\n");

    let plan = FleetPlan::new()
        .phase(Phase::Baseline {
            ticks: measure_ticks,
        })
        .phase(Phase::Train { ticks: train_ticks })
        .phase(Phase::Tuned {
            ticks: measure_ticks,
            label: "tuned".into(),
        });

    // The daemon is single-threaded by design, so the *scraper* runs on a
    // background thread — exactly what an external Prometheus would do.
    let done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let scraper = {
        let done = done.clone();
        std::thread::spawn(move || {
            while !done.load(std::sync::atomic::Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(500));
                let body = match scrape(addr) {
                    Ok(body) => body,
                    Err(_) => continue, // run may have just finished
                };
                let ticks = series_value(&body, "fleet_tick_total_count").unwrap_or(0.0);
                let p99_ms =
                    series_value(&body, "fleet_tick_total{quantile=\"0.99\"}").unwrap_or(0.0) / 1e6;
                let rate = series_value(&body, "fleet_tick_recent_rate").unwrap_or(0.0);
                let objectives: Vec<String> = cluster_names
                    .iter()
                    .map(|name| {
                        let series =
                            format!("fleet_cluster_{}_objective", name.replace(['.', '-'], "_"));
                        format!("{name} {:.0}", series_value(&body, &series).unwrap_or(0.0))
                    })
                    .collect();
                println!(
                    "tick {ticks:>6.0} | p99 {p99_ms:>6.2} ms | {rate:>5.0} cluster-ticks/s | \
                     objectives MB/s: {}",
                    objectives.join(", ")
                );
            }
        })
    };

    let report = daemon.run(&plan);
    done.store(true, std::sync::atomic::Ordering::Relaxed);
    scraper.join().expect("scraper panicked");
    println!("\n{}", report.summary());
    if let Some(tick) = report.telemetry.histogram("fleet.tick.total") {
        println!(
            "final tick latency: p50 {:.2} ms, p90 {:.2} ms, p99 {:.2} ms, max {:.2} ms",
            tick.p50_ns / 1e6,
            tick.p90_ns / 1e6,
            tick.p99_ns / 1e6,
            tick.max_ns as f64 / 1e6
        );
    }
    Ok(())
}
