//! Fleet mode: eight heterogeneous clusters tuned by one daemon, then eight
//! same-profile clusters sharing experience through the replay arena.
//!
//! The paper deploys one CAPES instance per storage cluster; the fleet daemon
//! scales that out — every member cluster keeps its own monitoring agents,
//! wire-framed reports and Interface Daemon writing into its own stripe of
//! **one** fleet-wide replay arena, while all clusters sharing an observation
//! geometry are decided by **one** shared DQN in a single batched forward
//! pass per tick. Clusters with different geometries (here: different client
//! counts) automatically get their own per-profile agent.
//!
//! The second stage shows the arena's transfer-learning path: eight clusters
//! of one profile (equal geometry, different workloads) train their shared
//! DQN on a self-biased weighted set of all eight stripes
//! ([`capes_fleet::ExperienceSharing`]), so every cluster learns from the
//! whole profile's experience.
//!
//! Run with `cargo run --release --example fleet_tuning`. Ticks can be scaled
//! with `CAPES_FLEET_TRAIN_TICKS` / `CAPES_FLEET_MEASURE_TICKS`.

use capes::{Hyperparameters, Phase};
use capes_fleet::{ExperienceSharing, Fleet, FleetPlan, ScenarioSpec};
use capes_simstore::Workload;

fn env_ticks(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let train_ticks = env_ticks("CAPES_FLEET_TRAIN_TICKS", 2_500);
    let measure_ticks = env_ticks("CAPES_FLEET_MEASURE_TICKS", 300);

    // Eight clusters cycling the paper's workload families and read/write
    // mixes with varying client counts — one run exercises many scenarios.
    // Fleet workers shard the member ticks across threads (also settable via
    // CAPES_FLEET_THREADS); any worker count is bit-identical to sequential,
    // so this only changes wall-clock on multi-core hosts, never results.
    let workers = env_ticks("CAPES_FLEET_WORKERS", 2) as usize;
    let scenarios = ScenarioSpec::heterogeneous_mix(8);
    let mut daemon = Fleet::builder()
        .hyperparams(Hyperparameters::quick_test())
        .seed(7)
        .workers(workers)
        .scenarios(scenarios)
        .build()
        .expect("valid fleet");
    println!(
        "fleet: {} clusters across {} profiles (shared DQN per profile), \
         {workers} fleet workers",
        daemon.num_clusters(),
        daemon.num_profiles()
    );
    for name in daemon.cluster_names() {
        println!("  · {name}");
    }

    println!(
        "\nrunning baseline {measure_ticks} / train {train_ticks} / tuned {measure_ticks} \
         ticks across the fleet…"
    );
    let report = daemon.run(
        &FleetPlan::new()
            .phase(Phase::Baseline {
                ticks: measure_ticks,
            })
            .phase(Phase::Train { ticks: train_ticks })
            .phase(Phase::Tuned {
                ticks: measure_ticks,
                label: "tuned".into(),
            }),
    );

    println!("\n{}", report.summary());
    println!("improvements over each cluster's baseline:");
    for (name, improvement) in report.improvements_over_baseline("tuned") {
        println!("  {name:<22} {:+.1} %", improvement * 100.0);
    }

    // Fleet reports serialize like experiment reports; drop one next to the
    // binary for the figure tooling.
    let path = std::env::temp_dir().join("capes-fleet-report.json");
    std::fs::write(&path, report.to_json()).expect("report write");
    println!("\nfleet report written to {}", path.display());

    // ------------------------------------------------------------------
    // Stage 2: one profile, eight clusters, experience sharing enabled.
    //
    // Equal geometry puts all eight clusters into a single profile (one
    // shared DQN); the fleet plan turns on self-biased sharing so every
    // training draw samples the trained cluster's own stripe at 3× the
    // weight of each of its seven peers.
    // ------------------------------------------------------------------
    let mixes = [0.1, 0.2, 0.3, 0.4, 0.6, 0.7, 0.8, 0.9];
    let mut shared = Fleet::builder()
        .hyperparams(Hyperparameters::quick_test())
        .seed(11)
        .scenarios(
            mixes
                .iter()
                .map(|&rw| ScenarioSpec::new(format!("rw-{rw:.1}"), Workload::random_rw(rw))),
        )
        .build()
        .expect("valid fleet");
    assert_eq!(shared.num_profiles(), 1, "equal geometry is one profile");
    println!(
        "\nshared-experience fleet: {} clusters in one profile, self-biased sampling",
        shared.num_clusters()
    );
    let shared_report = shared.run(
        &FleetPlan::new()
            .phase(Phase::Baseline {
                ticks: measure_ticks,
            })
            .phase(Phase::Train { ticks: train_ticks })
            .phase(Phase::Tuned {
                ticks: measure_ticks,
                label: "tuned".into(),
            })
            .share(
                0,
                ExperienceSharing::SelfBiased {
                    own: 3.0,
                    peers: 1.0,
                },
            ),
    );
    println!("\n{}", shared_report.summary());
    println!("improvements over each cluster's baseline (shared experience):");
    for (name, improvement) in shared_report.improvements_over_baseline("tuned") {
        println!("  {name:<22} {:+.1} %", improvement * 100.0);
    }
}
