//! Fleet mode: eight heterogeneous clusters tuned by one daemon.
//!
//! The paper deploys one CAPES instance per storage cluster; the fleet daemon
//! scales that out — every member cluster keeps its own monitoring agents,
//! wire-framed reports, Interface Daemon and replay shard, while all clusters
//! sharing an observation geometry are decided by **one** shared DQN in a
//! single batched forward pass per tick. Clusters with different geometries
//! (here: different client counts) automatically get their own per-profile
//! agent.
//!
//! Run with `cargo run --release --example fleet_tuning`. Ticks can be scaled
//! with `CAPES_FLEET_TRAIN_TICKS` / `CAPES_FLEET_MEASURE_TICKS`.

use capes::{Hyperparameters, Phase};
use capes_fleet::{Fleet, FleetPlan, ScenarioSpec};

fn env_ticks(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let train_ticks = env_ticks("CAPES_FLEET_TRAIN_TICKS", 2_500);
    let measure_ticks = env_ticks("CAPES_FLEET_MEASURE_TICKS", 300);

    // Eight clusters cycling the paper's workload families and read/write
    // mixes with varying client counts — one run exercises many scenarios.
    let scenarios = ScenarioSpec::heterogeneous_mix(8);
    let mut daemon = Fleet::builder()
        .hyperparams(Hyperparameters::quick_test())
        .seed(7)
        .scenarios(scenarios)
        .build()
        .expect("valid fleet");
    println!(
        "fleet: {} clusters across {} profiles (shared DQN per profile)",
        daemon.num_clusters(),
        daemon.num_profiles()
    );
    for name in daemon.cluster_names() {
        println!("  · {name}");
    }

    println!(
        "\nrunning baseline {measure_ticks} / train {train_ticks} / tuned {measure_ticks} \
         ticks across the fleet…"
    );
    let report = daemon.run(
        &FleetPlan::new()
            .phase(Phase::Baseline {
                ticks: measure_ticks,
            })
            .phase(Phase::Train { ticks: train_ticks })
            .phase(Phase::Tuned {
                ticks: measure_ticks,
                label: "tuned".into(),
            }),
    );

    println!("\n{}", report.summary());
    println!("improvements over each cluster's baseline:");
    for (name, improvement) in report.improvements_over_baseline("tuned") {
        println!("  {name:<22} {:+.1} %", improvement * 100.0);
    }

    // Fleet reports serialize like experiment reports; drop one next to the
    // binary for the figure tooling.
    let path = std::env::temp_dir().join("capes-fleet-report.json");
    std::fs::write(&path, report.to_json()).expect("report write");
    println!("\nfleet report written to {}", path.display());
}
