//! Fileserver tuning and the overfitting check of Figure 4.
//!
//! The Filebench "fileserver" personality is the hardest workload in the
//! paper's evaluation: it mixes reads, writes and metadata operations, so the
//! reward signal is noisy and the paper needed ~24 hours of training for a
//! 17 % gain. This example trains on the fileserver workload, then reuses the
//! trained model in later sessions after the cluster state has drifted
//! (simulated file fragmentation and a shifted clock), mirroring the paper's
//! three sessions spread over two weeks.
//!
//! Run with `cargo run --release --example fileserver_tuning`.

use capes::prelude::*;

fn env_ticks(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let train_ticks = env_ticks("CAPES_TRAIN_TICKS", 8_000);
    let measure_ticks = env_ticks("CAPES_MEASURE_TICKS", 600);
    let checkpoint = std::env::temp_dir().join("capes-fileserver-model.json");

    let target = SimulatedLustre::builder()
        .workload(Workload::fileserver())
        .seed(99)
        .build();
    println!("target system : {}", target.describe());

    let system = Capes::builder(target)
        .hyperparams(Hyperparameters::quick_test())
        .seed(99)
        .build()
        .expect("valid configuration");

    println!("training on the fileserver workload for {train_ticks} simulated seconds…");
    let mut experiment = Experiment::new(system).phase(Phase::Train { ticks: train_ticks });
    let report = experiment.run();
    println!(
        "  training mean throughput: {:.1} MB/s",
        report.sessions[0].mean_throughput()
    );
    experiment
        .system()
        .save_checkpoint(&checkpoint)
        .expect("checkpoint save");
    println!("  model checkpoint written to {}", checkpoint.display());

    // Three later sessions, each with drifted cluster state, as in Figure 4.
    for (i, fragmentation) in [0.0, 0.5, 1.0].into_iter().enumerate() {
        println!("\nsession {} (fragmentation {:.1}):", i + 1, fragmentation);
        experiment
            .system_mut()
            .target_mut()
            .cluster_mut()
            .perturb_session(fragmentation, 60 * 24 * (i as u64 + 1));
        // Each session: two hours of baseline, two hours of tuned measurement
        // in the paper; scaled down here.
        experiment = experiment
            .phase(Phase::Baseline {
                ticks: measure_ticks,
            })
            .phase(Phase::Tuned {
                ticks: measure_ticks,
                label: "tuned".into(),
            });
        let report = experiment.run();
        let baseline = report.baseline().expect("baseline ran");
        let tuned = report.session("tuned").expect("tuned ran");
        println!("  {}", baseline.summary());
        println!("  {}", tuned.summary());
        println!(
            "  improvement: {:+.1}%  (window = {:.0}, rate limit = {:.0})",
            report.improvement_over_baseline("tuned").unwrap_or(0.0) * 100.0,
            tuned.final_params[0],
            tuned.final_params[1]
        );
    }

    std::fs::remove_file(&checkpoint).ok();
}
