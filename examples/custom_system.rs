//! Tuning a user-defined target system.
//!
//! The paper stresses that CAPES "can be used to tune virtually any
//! parameters as long as an adapter function is provided" (Appendix A.2).
//! This example writes such an adapter for a small synthetic system that is
//! *not* the bundled cluster simulator: a key-value cache server whose
//! throughput depends on two knobs (cache size and worker threads) with an
//! interior optimum and noisy measurements. The same system is then tuned by
//! the DRL engine and by the hill-climbing comparator — both driven through
//! the unified `TuningEngine` experiment path.
//!
//! Run with `cargo run --release --example custom_system`.

use capes::prelude::*;

/// A toy key-value cache server with two tunable parameters.
///
/// * Larger caches raise the hit rate (diminishing returns) but past the
///   point where the working set fits, extra cache only adds GC pressure.
/// * More worker threads add concurrency until lock contention wins.
struct CacheServer {
    cache_mb: f64,
    workers: f64,
    rng_state: u64,
}

impl CacheServer {
    fn new() -> Self {
        CacheServer {
            cache_mb: 64.0,
            workers: 4.0,
            rng_state: 0x1234_5678,
        }
    }

    fn noise(&mut self) -> f64 {
        self.rng_state ^= self.rng_state << 13;
        self.rng_state ^= self.rng_state >> 7;
        self.rng_state ^= self.rng_state << 17;
        ((self.rng_state % 1000) as f64 / 1000.0 - 0.5) * 6.0
    }

    fn ops_per_sec(&mut self) -> f64 {
        // Hit rate saturates around a 400 MB working set.
        let hit_rate = 1.0 - (-self.cache_mb / 220.0).exp();
        let gc_penalty = 1.0 / (1.0 + (self.cache_mb / 900.0).powi(2));
        // Concurrency helps until ~12 workers, then contention dominates.
        let concurrency = self.workers / (1.0 + (self.workers / 12.0).powi(2));
        (900.0 * hit_rate * gc_penalty * concurrency / 8.0 + self.noise()).max(1.0)
    }
}

impl TargetSystem for CacheServer {
    fn num_nodes(&self) -> usize {
        1
    }

    fn pis_per_node(&self) -> usize {
        3
    }

    fn tunable_specs(&self) -> Vec<TunableSpec> {
        vec![
            TunableSpec {
                name: "cache_mb".into(),
                min: 16.0,
                max: 2048.0,
                step: 32.0,
                default: 64.0,
            },
            TunableSpec {
                name: "worker_threads".into(),
                min: 1.0,
                max: 64.0,
                step: 1.0,
                default: 4.0,
            },
        ]
    }

    fn current_params(&self) -> Vec<f64> {
        vec![self.cache_mb, self.workers]
    }

    fn apply_params(&mut self, values: &[f64]) {
        self.cache_mb = values[0].clamp(16.0, 2048.0);
        self.workers = values[1].clamp(1.0, 64.0);
    }

    fn step(&mut self) -> TargetTick {
        let ops = self.ops_per_sec();
        TargetTick {
            // Normalised indicators: the two knobs and the achieved rate.
            per_node_pis: vec![vec![
                self.cache_mb / 2048.0,
                self.workers / 64.0,
                ops / 1000.0,
            ]],
            throughput_mbps: ops,
            latency_ms: 1000.0 / ops.max(1.0),
        }
    }

    fn describe(&self) -> String {
        "toy key-value cache server (2 tunable parameters)".into()
    }
}

/// Baseline → train → tuned on the cache server with the given engine
/// (`None` = the default DRL engine): one generic code path for every engine.
fn tune_with(engine: Option<Box<dyn TuningEngine>>, train_ticks: u64) -> ExperimentReport {
    let mut builder = Capes::builder(CacheServer::new())
        .hyperparams(Hyperparameters::quick_test())
        .seed(7);
    if let Some(engine) = engine {
        builder = builder.engine(engine);
    }
    let system = builder.build().expect("valid configuration");
    let mut experiment = Experiment::new(system)
        .phase(Phase::Baseline { ticks: 400 })
        .phase(Phase::Train { ticks: train_ticks })
        .phase(Phase::Tuned {
            ticks: 400,
            label: "tuned".into(),
        });
    experiment.run()
}

fn main() {
    let train_ticks: u64 = std::env::var("CAPES_TRAIN_TICKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8_000);

    println!("target system : {}", CacheServer::new().describe());

    // CAPES with the DRL engine.
    println!("training the DRL engine for {train_ticks} ticks…");
    let report = tune_with(None, train_ticks);
    let baseline = report.baseline().expect("baseline ran");
    let tuned = report.session("tuned").expect("tuned ran");
    println!("  {}", baseline.summary());
    println!("  {}", tuned.summary());
    println!(
        "  tuned knobs: cache = {:.0} MB, workers = {:.0}",
        tuned.final_params[0], tuned.final_params[1]
    );
    println!(
        "  improvement over baseline: {:+.1}%",
        report.improvement_over_baseline("tuned").unwrap_or(0.0) * 100.0
    );

    // For comparison, the classic search-based tuner on the same system and
    // through the same experiment plan (the "one-time search" prior-work
    // class discussed in §5 of the paper).
    let search_report = tune_with(
        Some(Box::new(SearchEngine::new(HillClimbing::new(60), 30))),
        60 * 30,
    );
    let search_tuned = search_report.session("tuned").expect("tuned ran");
    println!(
        "  hill climbing reached {:.0} ops/s with cache = {:.0} MB, workers = {:.0} ({:+.1}% vs its baseline)",
        search_tuned.mean_throughput(),
        search_tuned.final_params[0],
        search_tuned.final_params[1],
        search_report.improvement_over_baseline("tuned").unwrap_or(0.0) * 100.0
    );
}
