//! Tuning a user-defined target system.
//!
//! The paper stresses that CAPES "can be used to tune virtually any
//! parameters as long as an adapter function is provided" (Appendix A.2).
//! This example writes such an adapter for a small synthetic system that is
//! *not* the bundled cluster simulator: a key-value cache server whose
//! throughput depends on two knobs (cache size and worker threads) with an
//! interior optimum and noisy measurements.
//!
//! Run with `cargo run --release --example custom_system`.

use capes::prelude::*;

/// A toy key-value cache server with two tunable parameters.
///
/// * Larger caches raise the hit rate (diminishing returns) but past the
///   point where the working set fits, extra cache only adds GC pressure.
/// * More worker threads add concurrency until lock contention wins.
struct CacheServer {
    cache_mb: f64,
    workers: f64,
    rng_state: u64,
}

impl CacheServer {
    fn new() -> Self {
        CacheServer {
            cache_mb: 64.0,
            workers: 4.0,
            rng_state: 0x1234_5678,
        }
    }

    fn noise(&mut self) -> f64 {
        self.rng_state ^= self.rng_state << 13;
        self.rng_state ^= self.rng_state >> 7;
        self.rng_state ^= self.rng_state << 17;
        ((self.rng_state % 1000) as f64 / 1000.0 - 0.5) * 6.0
    }

    fn ops_per_sec(&mut self) -> f64 {
        // Hit rate saturates around a 400 MB working set.
        let hit_rate = 1.0 - (-self.cache_mb / 220.0).exp();
        let gc_penalty = 1.0 / (1.0 + (self.cache_mb / 900.0).powi(2));
        // Concurrency helps until ~12 workers, then contention dominates.
        let concurrency = self.workers / (1.0 + (self.workers / 12.0).powi(2));
        (900.0 * hit_rate * gc_penalty * concurrency / 8.0 + self.noise()).max(1.0)
    }
}

impl TargetSystem for CacheServer {
    fn num_nodes(&self) -> usize {
        1
    }

    fn pis_per_node(&self) -> usize {
        3
    }

    fn tunable_specs(&self) -> Vec<TunableSpec> {
        vec![
            TunableSpec {
                name: "cache_mb".into(),
                min: 16.0,
                max: 2048.0,
                step: 32.0,
                default: 64.0,
            },
            TunableSpec {
                name: "worker_threads".into(),
                min: 1.0,
                max: 64.0,
                step: 1.0,
                default: 4.0,
            },
        ]
    }

    fn current_params(&self) -> Vec<f64> {
        vec![self.cache_mb, self.workers]
    }

    fn apply_params(&mut self, values: &[f64]) {
        self.cache_mb = values[0].clamp(16.0, 2048.0);
        self.workers = values[1].clamp(1.0, 64.0);
    }

    fn step(&mut self) -> TargetTick {
        let ops = self.ops_per_sec();
        TargetTick {
            // Normalised indicators: the two knobs and the achieved rate.
            per_node_pis: vec![vec![
                self.cache_mb / 2048.0,
                self.workers / 64.0,
                ops / 1000.0,
            ]],
            throughput_mbps: ops,
            latency_ms: 1000.0 / ops.max(1.0),
        }
    }

    fn describe(&self) -> String {
        "toy key-value cache server (2 tunable parameters)".into()
    }
}

fn main() {
    let train_ticks: u64 = std::env::var("CAPES_TRAIN_TICKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8_000);

    let target = CacheServer::new();
    println!("target system : {}", target.describe());

    let mut system = CapesSystem::new(target, Hyperparameters::quick_test(), 7);

    let baseline = run_baseline_session(&mut system, 400, "baseline (defaults)");
    println!("  {}", baseline.summary());

    println!("training for {train_ticks} ticks…");
    run_training_session(&mut system, train_ticks);

    let tuned = run_tuning_session(&mut system, 400, "tuned (CAPES)");
    println!("  {}", tuned.summary());
    println!(
        "  tuned knobs: cache = {:.0} MB, workers = {:.0}",
        tuned.final_params[0], tuned.final_params[1]
    );
    println!(
        "  improvement over baseline: {:+.1}%",
        tuned.improvement_over(&baseline) * 100.0
    );

    // For comparison, run the classic search-based tuners on the same system
    // (the "one-time search" prior-work class discussed in §5 of the paper).
    let mut fresh = CacheServer::new();
    let hill = HillClimbing::new(60).tune(&mut fresh, 30);
    println!(
        "  hill climbing found {:.0} ops/s with cache = {:.0} MB, workers = {:.0} ({} evaluations)",
        hill.best_throughput, hill.best_params[0], hill.best_params[1], hill.evaluations
    );
}
