//! Fleet tuning over real loopback TCP (`--features net`): member clusters
//! send their monitoring frames through the `capes-net` reactor server
//! instead of the in-process wire transport, and actions return the same
//! way. The result series is bit-identical to `Transport::Wire` under the
//! same seeds — the socket layer adds observability (the report's `net`
//! section) without perturbing a single decision.
//!
//! ```bash
//! cargo run --release --features net --example fleet_socket
//! ```
//!
//! Ticks can be scaled with `CAPES_FLEET_TRAIN_TICKS` /
//! `CAPES_FLEET_MEASURE_TICKS` (as in `fleet_tuning.rs`).

use capes::{Hyperparameters, Phase, Transport};
use capes_fleet::{Fleet, FleetPlan, ScenarioSpec};

fn env_ticks(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let train_ticks = env_ticks("CAPES_FLEET_TRAIN_TICKS", 2_500);
    let measure_ticks = env_ticks("CAPES_FLEET_MEASURE_TICKS", 300);

    let mut daemon = Fleet::builder()
        .hyperparams(Hyperparameters::quick_test())
        .seed(7)
        .transport(Transport::Socket)
        .scenarios(ScenarioSpec::heterogeneous_mix(4))
        .build()?;

    println!(
        "fleet daemon listening on {} (loopback members connected)",
        daemon.socket_addr().expect("socket transport is on")
    );

    let report = daemon.run(
        &FleetPlan::new()
            .phase(Phase::Baseline {
                ticks: measure_ticks,
            })
            .phase(Phase::Train { ticks: train_ticks })
            .phase(Phase::Tuned {
                ticks: measure_ticks,
                label: "tuned".into(),
            }),
    );

    println!("{}", report.summary());
    let net = report.net;
    println!(
        "socket ingest: {} frames in / {} out, {:.0} B/tick up, {:.0} B/tick down, \
         {} shed (backpressure), {} decode errors",
        net.frames_in,
        net.frames_out,
        net.bytes_in_per_tick,
        net.bytes_out_per_tick,
        net.shed_backpressure,
        net.decode_errors
    );
    Ok(())
}
